"""Tests for workload generators (repro.workloads)."""

import pytest

from repro.addressing.address_map import AddressMap
from repro.packets.commands import CMD, is_read, is_write
from repro.workloads.gups import gups_requests
from repro.workloads.lcg import LCG, GlibcRand
from repro.workloads.random_access import (
    RandomAccessConfig,
    random_access_requests,
)
from repro.workloads.stream import stream_requests
from repro.workloads.stride import stride_requests

GB = 1 << 30


class TestGlibcRand:
    def test_bit_exact_against_glibc_seed_1(self):
        """First five outputs of glibc srandom(1)/random()."""
        g = GlibcRand(1)
        assert [g.next() for _ in range(5)] == [
            1804289383, 846930886, 1681692777, 1714636915, 1957747793,
        ]

    def test_seed_zero_coerces_to_one(self):
        assert GlibcRand(0).next() == GlibcRand(1).next()

    def test_reseed_reproduces(self):
        g = GlibcRand(7)
        first = [g.next() for _ in range(10)]
        g.seed(7)
        assert [g.next() for _ in range(10)] == first

    def test_outputs_are_31_bit(self):
        g = GlibcRand(123)
        assert all(0 <= g.next() < (1 << 31) for _ in range(100))

    def test_next_below(self):
        g = GlibcRand(1)
        assert all(0 <= g.next_below(17) < 17 for _ in range(100))
        with pytest.raises(ValueError):
            g.next_below(0)

    def test_iterator_protocol(self):
        g = GlibcRand(1)
        it = iter(g)
        assert next(it) == 1804289383


class TestLCG:
    def test_bit_exact_against_glibc_type0_seed_1(self):
        """glibc TYPE_0 rand() outputs for srand(1)."""
        l = LCG(1)
        assert [l.next() for _ in range(3)] == [1103527590, 377401575, 662824084]

    def test_constants(self):
        assert LCG.A == 1103515245
        assert LCG.C == 12345

    def test_next_u64_spans_high_bits(self):
        l = LCG(42)
        vals = [l.next_u64() for _ in range(50)]
        assert any(v > (1 << 62) for v in vals)

    def test_determinism(self):
        assert [LCG(9).next() for _ in range(5)] == [LCG(9).next() for _ in range(5)]


class TestRandomAccess:
    def cfg(self, **kw):
        base = dict(num_requests=1000, request_bytes=64, read_fraction=0.5, seed=1)
        base.update(kw)
        return RandomAccessConfig(**base)

    def test_request_count(self):
        reqs = list(random_access_requests(2 * GB, self.cfg()))
        assert len(reqs) == 1000

    def test_mix_is_roughly_half(self):
        reqs = list(random_access_requests(2 * GB, self.cfg(num_requests=4000)))
        reads = sum(1 for cmd, _, _ in reqs if is_read(cmd))
        assert 0.45 < reads / len(reqs) < 0.55

    def test_pure_read_and_pure_write(self):
        reads = list(random_access_requests(2 * GB, self.cfg(read_fraction=1.0)))
        assert all(is_read(c) for c, _, _ in reads)
        writes = list(random_access_requests(2 * GB, self.cfg(read_fraction=0.0)))
        assert all(is_write(c) for c, _, _ in writes)

    def test_addresses_block_aligned_and_in_range(self):
        for _, addr, _ in random_access_requests(2 * GB, self.cfg()):
            assert addr % 64 == 0
            assert 0 <= addr < 2 * GB

    def test_writes_carry_payload(self):
        for cmd, _, payload in random_access_requests(2 * GB, self.cfg()):
            if is_write(cmd):
                assert payload is not None and len(payload) == 8
            else:
                assert payload is None

    def test_deterministic_per_seed(self):
        a = list(random_access_requests(2 * GB, self.cfg(seed=5)))
        b = list(random_access_requests(2 * GB, self.cfg(seed=5)))
        c = list(random_access_requests(2 * GB, self.cfg(seed=6)))
        assert a == b
        assert a != c

    def test_glibc_stream_differs_from_lcg(self):
        a = list(random_access_requests(2 * GB, self.cfg(use_glibc_rand=True)))
        b = list(random_access_requests(2 * GB, self.cfg(use_glibc_rand=False)))
        assert a != b

    def test_request_size_selects_commands(self):
        reqs = list(random_access_requests(2 * GB, self.cfg(request_bytes=128)))
        cmds = {c for c, _, _ in reqs}
        assert cmds <= {CMD.RD128, CMD.WR128}

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomAccessConfig(num_requests=0)
        with pytest.raises(ValueError):
            RandomAccessConfig(request_bytes=24)
        with pytest.raises(ValueError):
            RandomAccessConfig(read_fraction=1.5)

    def test_spread_over_vaults(self):
        amap = AddressMap(16, 8, 64, 2 * GB)
        vaults = {
            amap.vault_of(addr)
            for _, addr, _ in random_access_requests(2 * GB, self.cfg())
        }
        assert len(vaults) == 16


class TestStream:
    def test_sequential_addresses(self):
        reqs = list(stream_requests(2 * GB, 10))
        assert [a for _, a, _ in reqs] == [i * 64 for i in range(10)]

    def test_wraps_capacity(self):
        cap = 1 << 20
        reqs = list(stream_requests(cap, cap // 64 + 2))
        assert reqs[-2][1] == 0
        assert reqs[-1][1] == 64

    def test_start_offset_aligned(self):
        reqs = list(stream_requests(2 * GB, 3, start=100))
        assert reqs[0][1] == 64  # aligned down to the block

    def test_mixed_stream(self):
        reqs = list(stream_requests(2 * GB, 500, read_fraction=0.5))
        kinds = {is_read(c) for c, _, _ in reqs}
        assert kinds == {True, False}

    def test_bad_size(self):
        with pytest.raises(ValueError):
            list(stream_requests(2 * GB, 1, request_bytes=24))


class TestStride:
    def test_fixed_stride(self):
        reqs = list(stride_requests(2 * GB, 5, stride_bytes=4096))
        assert [a for _, a, _ in reqs] == [0, 4096, 8192, 12288, 16384]

    def test_stride_validation(self):
        with pytest.raises(ValueError):
            list(stride_requests(2 * GB, 1, stride_bytes=0))
        with pytest.raises(ValueError):
            list(stride_requests(2 * GB, 1, stride_bytes=100))

    def test_vault_pinning_stride(self):
        """A stride of vaults*block pins every access to vault 0 under
        the default low-interleave map — the pathological case."""
        amap = AddressMap(16, 8, 64, 2 * GB)
        stride = 16 * 64
        vaults = {
            amap.vault_of(a)
            for _, a, _ in stride_requests(2 * GB, 100, stride_bytes=stride)
        }
        assert vaults == {0}


class TestGups:
    def test_updates_are_atomics(self):
        reqs = list(gups_requests(2 * GB, 100))
        assert all(c is CMD.ADD16 for c, _, _ in reqs)
        assert all(p is not None for _, _, p in reqs)

    def test_posted_variant(self):
        reqs = list(gups_requests(2 * GB, 10, posted=True))
        assert all(c is CMD.P_ADD16 for c, _, _ in reqs)

    def test_table_confinement(self):
        table = 1 << 20
        for _, addr, _ in gups_requests(2 * GB, 200, table_bytes=table):
            assert 0 <= addr < table
            assert addr % 16 == 0

    def test_table_validation(self):
        with pytest.raises(ValueError):
            list(gups_requests(2 * GB, 1, table_bytes=4 * GB))
