"""Unit + property tests for the queue structure (repro.core.queueing)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.queueing import PacketQueue, QueueSlot
from repro.packets.commands import CMD
from repro.packets.packet import Packet


def mk(n=1):
    return [Packet(cmd=CMD.RD16, tag=i % 512) for i in range(n)]


class TestBasics:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            PacketQueue(0)

    def test_push_pop_fifo(self):
        q = PacketQueue(4)
        pkts = mk(3)
        for p in pkts:
            assert q.push(p)
        assert [q.pop() for _ in range(3)] == pkts

    def test_push_full_returns_false_and_counts_stall(self):
        q = PacketQueue(2)
        assert q.push(mk(1)[0])
        assert q.push(mk(1)[0])
        assert not q.push(mk(1)[0])
        assert q.total_stalls == 1
        assert q.is_full

    def test_peek_does_not_remove(self):
        q = PacketQueue(4)
        p = mk(1)[0]
        q.push(p)
        assert q.peek() is p
        assert len(q) == 1
        assert q.peek(5) is None
        assert q.peek(-1) is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            PacketQueue(1).pop()

    def test_occupancy_and_free_slots(self):
        q = PacketQueue(8)
        for p in mk(3):
            q.push(p)
        assert q.occupancy == 3
        assert q.free_slots == 5


class TestPositional:
    def test_pop_at_middle_preserves_order(self):
        """Weak-ordering pass: remote packets may pass local ones."""
        q = PacketQueue(8)
        pkts = mk(5)
        for p in pkts:
            q.push(p)
        got = q.pop_at(2)
        assert got is pkts[2]
        assert list(q) == [pkts[0], pkts[1], pkts[3], pkts[4]]

    def test_pop_at_zero_is_pop(self):
        q = PacketQueue(4)
        pkts = mk(2)
        for p in pkts:
            q.push(p)
        assert q.pop_at(0) is pkts[0]

    def test_pop_at_out_of_range(self):
        q = PacketQueue(4)
        q.push(mk(1)[0])
        with pytest.raises(IndexError):
            q.pop_at(1)

    def test_stamps_track_positions_after_pop_at(self):
        q = PacketQueue(8)
        pkts = mk(4)
        for i, p in enumerate(pkts):
            q.push(p, cycle=i * 10)
        q.pop_at(1)
        assert q.stamp_at(0) == 0
        assert q.stamp_at(1) == 20
        assert q.stamp_at(2) == 30


class TestExpiry:
    def test_expire_older_than(self):
        q = PacketQueue(8)
        pkts = mk(4)
        for i, p in enumerate(pkts):
            q.push(p, cycle=i)
        expired = q.expire_older_than(cycle=10, max_age=8)
        assert expired == pkts[:2]  # ages 10, 9 > 8; ages 8, 7 stay
        assert list(q) == pkts[2:]

    def test_expire_disabled_with_zero_age(self):
        q = PacketQueue(4)
        q.push(mk(1)[0], cycle=0)
        assert q.expire_older_than(cycle=1000, max_age=0) == []
        assert len(q) == 1


class TestSlotView:
    def test_slots_materialise_valid_bits(self):
        q = PacketQueue(4)
        pkts = mk(2)
        for p in pkts:
            q.push(p)
        slots = q.slots()
        assert len(slots) == 4
        assert all(isinstance(s, QueueSlot) for s in slots)
        assert [s.valid for s in slots] == [True, True, False, False]
        assert slots[0].packet is pkts[0]
        assert slots[3].packet is None


class TestStatsAndLifecycle:
    def test_high_water(self):
        q = PacketQueue(8)
        for p in mk(5):
            q.push(p)
        for _ in range(3):
            q.pop()
        q.push(mk(1)[0])
        assert q.high_water == 5

    def test_counters(self):
        q = PacketQueue(2)
        q.push(mk(1)[0])
        q.push(mk(1)[0])
        q.push(mk(1)[0])  # stall
        q.pop()
        assert (q.total_enqueued, q.total_dequeued, q.total_stalls) == (2, 1, 1)

    def test_drain(self):
        q = PacketQueue(4)
        pkts = mk(3)
        for p in pkts:
            q.push(p)
        assert q.drain() == pkts
        assert q.is_empty

    def test_reset(self):
        q = PacketQueue(4)
        for p in mk(3):
            q.push(p)
        q.reset()
        assert q.is_empty
        assert q.total_enqueued == 0
        assert q.high_water == 0


@given(ops=st.lists(st.one_of(
    st.tuples(st.just("push"), st.integers(0, 511)),
    st.tuples(st.just("pop"), st.just(0)),
    st.tuples(st.just("pop_at"), st.integers(0, 6)),
), max_size=60))
@settings(max_examples=100)
def test_queue_invariants_under_random_ops(ops):
    """Occupancy never exceeds depth; FIFO order of surviving packets
    matches a reference list model; counters balance."""
    q = PacketQueue(5)
    model = []
    for op, arg in ops:
        if op == "push":
            p = Packet(cmd=CMD.RD16, tag=arg)
            ok = q.push(p, cycle=len(model))
            assert ok == (len(model) < 5)
            if ok:
                model.append(p)
        elif op == "pop" and model:
            assert q.pop() is model.pop(0)
        elif op == "pop_at" and arg < len(model):
            assert q.pop_at(arg) is model.pop(arg)
        assert list(q) == model
        assert 0 <= len(q) <= q.depth
        assert q.total_enqueued - q.total_dequeued == len(model)
