"""Tests for bandwidth analysis (repro.analysis.bandwidth)."""

import pytest

from repro.analysis import bandwidth as bw
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple


def run_sim(n=128, links=4):
    sim = build_simple(HMCSim(num_devs=1, num_links=links, num_banks=8,
                              capacity=2 if links == 4 else 4))
    host = Host(sim)
    host.run([(CMD.RD64, i * 64, None) for i in range(n)])
    return sim


class TestRawBandwidth:
    def test_paper_headline_320_gbs(self):
        """Paper III.A: up to 320 GB/s per device (8 links)."""
        assert bw.raw_device_bandwidth_gbs(8, 16, 10.0) == 320.0

    def test_four_link_at_10gbps(self):
        assert bw.raw_device_bandwidth_gbs(4, 16, 10.0) == 160.0

    def test_four_link_at_15gbps(self):
        assert bw.raw_device_bandwidth_gbs(4, 16, 15.0) == 240.0


class TestMeasurement:
    def test_report_structure(self):
        sim = run_sim()
        report = bw.measure(sim)
        assert len(report.links) == 4
        assert report.cycles == sim.clock_value
        assert report.total_bytes > 0

    def test_flit_accounting(self):
        """n RD64 requests = n request FLITs in, 5n response FLITs out."""
        sim = run_sim(n=64)
        report = bw.measure(sim)
        rx = sum(l.rx_flits for l in report.links)
        tx = sum(l.tx_flits for l in report.links)
        assert rx == 64          # 1-FLIT read requests
        assert tx == 64 * 5      # 5-FLIT read responses

    def test_bytes_properties(self):
        sim = run_sim(n=16)
        report = bw.measure(sim)
        link = report.links[0]
        assert link.rx_bytes == link.rx_flits * 16
        assert link.total_bytes == link.rx_bytes + link.tx_bytes

    def test_delivered_bandwidth_positive(self):
        report = bw.measure(run_sim())
        assert report.delivered_gbs > 0
        assert report.seconds > 0

    def test_round_robin_balance_near_one(self):
        report = bw.measure(run_sim(n=256))
        assert report.balance > 0.8

    def test_raw_capacity_aggregates_host_links(self):
        report = bw.measure(run_sim(links=4))
        # 4 host links x 16 lanes x 10 Gbps x 2 directions / 8 bits.
        assert report.raw_capacity_gbs == pytest.approx(160.0)

    def test_empty_sim(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        report = bw.measure(sim)
        assert report.delivered_gbs == 0.0
        assert report.balance == 1.0
        assert report.utilization == 0.0

    def test_as_dict_and_render(self):
        report = bw.measure(run_sim())
        d = report.as_dict()
        assert set(d) >= {"delivered_gbs", "raw_capacity_gbs", "utilization"}
        text = bw.render(report)
        assert "GB/s" in text
        assert "link balance" in text

    def test_over_capacity_note_in_render(self):
        """The idealised link model can exceed wire rate; the renderer
        flags it rather than hiding it."""
        report = bw.measure(run_sim(n=512))
        if report.utilization > 1.0:
            assert "note" in bw.render(report)
