"""Unit tests for the six-sub-cycle clock engine (repro.core.clock)."""

import pytest

from repro.core.simulator import HMCSim
from repro.packets.commands import CMD
from repro.packets.packet import build_memrequest
from repro.registers.regdefs import index_by_name, physical_index
from repro.trace.events import EventType


@pytest.fixture
def sim():
    s = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)
    s.attach_host(0, 0)
    return s


class TestClockProgression:
    def test_clock_increments_by_one(self, sim):
        sim.clock()
        assert sim.clock_value == 1
        sim.clock(5)
        assert sim.clock_value == 6

    def test_stat_register_tracks_clock(self, sim):
        """Stage 6 snapshots the 64-bit clock into STAT."""
        sim.clock(3)
        assert sim.devices[0].regs.internal_read("STAT") == 3

    def test_rws_registers_clear_each_cycle(self, sim):
        sim.jtag_reg_write(0, physical_index(index_by_name("GC")), 0xF)
        assert sim.jtag_reg_read(0, physical_index(index_by_name("GC"))) == 0xF
        sim.clock()
        assert sim.jtag_reg_read(0, physical_index(index_by_name("GC"))) == 0

    def test_no_progress_without_clock(self, sim):
        """Paper V.C: internal operations do not progress until the
        clock function is called."""
        sim.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))
        assert sim.devices[0].xbars[0].rqst.occupancy == 1
        assert sim.devices[0].vaults[0].rqst.occupancy == 0  # still queued


class TestStageOrdering:
    def test_packet_needs_multiple_stages(self, sim):
        """A packet cannot go crossbar -> bank -> response delivery in
        a single stage; it progresses stage by stage."""
        sim.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))
        # Cycle 0: the injected packet (stamped this cycle) waits one
        # cycle at the registered crossbar input stage.
        sim.clock()
        dev = sim.devices[0]
        assert dev.vaults[0].rqst.occupancy == 0
        # Cycle 1: crossbar -> vault, vault processes, response registers.
        sim.clock()
        assert dev.total_requests_processed == 1

    def test_request_completes_and_returns(self, sim):
        sim.send(build_memrequest(0, 0x40, 7, CMD.RD64, link=0))
        for _ in range(10):
            sim.clock()
        rsp = sim.recv()
        assert rsp.tag == 7

    def test_stage_counters_accumulate(self, sim):
        sim.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))
        sim.clock(5)
        counts = sim.engine.stage_counts
        assert counts[2] >= 1  # root crossbar moved the packet
        assert counts[4] >= 1  # vault processed it
        assert counts[5] >= 1  # response registered
        assert counts[6] == 5  # one clock update per cycle

    def test_subcycle_markers_emitted_at_full_verbosity(self, sim):
        sink = sim.trace_to_memory(EventType.ALL)
        sim.clock()
        stages = [e.stage for e in sink.events if e.type is EventType.SUBCYCLE]
        assert stages == [1, 2, 3, 4, 5, 6]

    def test_subcycle_markers_suppressed_at_standard_verbosity(self, sim):
        sink = sim.trace_to_memory(EventType.STANDARD)
        sim.clock()
        assert not any(e.type is EventType.SUBCYCLE for e in sink.events)


class TestMultiDeviceOrdering:
    def test_chained_request_takes_extra_cycles(self):
        s = HMCSim(num_devs=2, num_links=4, num_banks=8, capacity=2)
        s.attach_host(0, 0)
        s.connect(0, 1, 1, 0)
        # Request to the far cube.
        s.send(build_memrequest(1, 0x40, 1, CMD.RD64, link=0))
        local_latency = None
        s2 = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)
        s2.attach_host(0, 0)
        s2.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))

        def cycles_to_response(sim):
            for c in range(1, 40):
                sim.clock()
                try:
                    sim.recv()
                    return c
                except Exception:
                    continue
            raise AssertionError("no response within 40 cycles")

        remote = cycles_to_response(s)
        local = cycles_to_response(s2)
        assert remote > local  # chaining costs hops

    def test_children_process_before_roots_in_stage1_2(self):
        """Stage 1 (children) precedes stage 2 (roots): a root's forward
        from this cycle is seen by the child only next cycle."""
        s = HMCSim(num_devs=2, num_links=4, num_banks=8, capacity=2)
        s.attach_host(0, 0)
        s.connect(0, 1, 1, 0)
        s.send(build_memrequest(1, 0x40, 1, CMD.RD64, link=0))
        s.clock()  # injected packet waits at registered input
        s.clock()  # root forwards to child's crossbar
        child = s.devices[1]
        assert child.xbars[0].rqst.occupancy == 1
        assert child.vaults[0].rqst.occupancy == 0
        s.clock()  # child's stage-1 pass moves it to the vault & processes
        assert child.total_requests_processed == 1


class TestHopLimit:
    def test_disabling_hop_limit_accelerates_delivery(self):
        fast = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)
        fast.attach_host(0, 0)
        fast.enforce_hop_limit = False
        fast.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))
        fast.clock()
        assert fast.devices[0].total_requests_processed == 1
