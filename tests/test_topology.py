"""Tests for topology builders, validation and route analysis."""

import numpy as np
import pytest

from repro.core.errors import TopologyError
from repro.core.simulator import HMCSim
from repro.topology.builder import (
    build_chain,
    build_mesh,
    build_ring,
    build_simple,
    build_torus_2d,
    edge_list,
)
from repro.topology.route import (
    hop_count_matrix,
    host_distance,
    link_graph,
    mean_host_distance,
    path_between,
)
from repro.topology.validate import diagnose, strict_check


def mk(n, links=4):
    return HMCSim(num_devs=n, num_links=links, num_banks=8, capacity=2)


class TestBuilders:
    def test_simple_single_device(self):
        s = build_simple(mk(1))
        assert len(s.host_links()) == 4
        assert diagnose(s).ok

    def test_simple_partial_host_links(self):
        s = build_simple(mk(1), host_links=2)
        assert len(s.host_links()) == 2

    def test_simple_rejects_bad_count(self):
        with pytest.raises(TopologyError):
            build_simple(mk(1), host_links=5)

    def test_chain(self):
        s = build_chain(mk(4), host_links=1)
        assert len(s.host_links()) == 1
        assert edge_list(s) == [(0, 1), (1, 2), (2, 3)]
        assert diagnose(s).ok

    def test_ring(self):
        s = build_ring(mk(4))
        edges = edge_list(s)
        assert len(edges) == 4
        assert (0, 3) in edges  # the wraparound edge closes the ring

    def test_ring_needs_three_devices(self):
        with pytest.raises(TopologyError):
            build_ring(mk(2))

    def test_mesh_2x2(self):
        s = build_mesh(mk(4), shape=(2, 2))
        assert len(edge_list(s)) == 4  # 2 horizontal + 2 vertical
        assert diagnose(s).ok

    def test_mesh_shape_must_cover(self):
        with pytest.raises(TopologyError):
            build_mesh(mk(4), shape=(3, 2))

    def test_mesh_auto_shape(self):
        s = build_mesh(mk(6))
        assert len(edge_list(s)) == 7  # 2x3 grid: 4 + 3 edges

    def test_torus_adds_wraparound(self):
        # 1x4 torus: path edges + one wraparound in the length-4 dim.
        s = build_torus_2d(mk(4), shape=(1, 4))
        assert len(edge_list(s)) == 4
        # Small dims (<3) skip duplicate wraparounds:
        s2 = build_torus_2d(mk(4, links=4), shape=(2, 2))
        assert len(edge_list(s2)) == 4  # same as the 2x2 mesh

    def test_chain_runs_out_of_links(self):
        # host_links=4 consumes every link of dev0, leaving none for the
        # chain hop to dev1 -> the builder reports the exhaustion.
        with pytest.raises(TopologyError):
            build_chain(mk(3), host_links=4)


class TestValidation:
    def test_diagnose_counts(self):
        s = build_chain(mk(3))
        rep = diagnose(s)
        assert rep.num_devices == 3
        assert rep.host_links == 1
        assert rep.chain_links == 2
        assert rep.unreachable_devices == []
        assert rep.ok

    def test_no_host_is_flagged(self):
        s = mk(2)
        s.connect(0, 0, 1, 0)
        rep = diagnose(s)
        assert not rep.ok
        assert any("host" in w for w in rep.warnings)
        with pytest.raises(TopologyError):
            strict_check(s)

    def test_unreachable_device_flagged_but_simulable(self):
        """Paper IV.2: misconfigured topologies simulate with error
        responses rather than failing."""
        s = mk(3)
        s.attach_host(0, 0)
        s.connect(0, 1, 1, 0)
        # Device 2 dangles.
        rep = diagnose(s)
        assert rep.unreachable_devices == [2]
        assert not rep.ok
        # ...but the simulation still runs and answers with errors.
        from repro.packets.commands import CMD
        from repro.packets.packet import ErrStat, build_memrequest
        s.send(build_memrequest(2, 0x40, 1, CMD.RD64, link=0))
        s.clock(10)
        rsp = s.recv()
        assert rsp.errstat is ErrStat.UNROUTABLE

    def test_strict_check_passes_clean_topology(self):
        strict_check(build_ring(mk(4)))


class TestRouteAnalysis:
    def test_link_graph_nodes(self):
        s = build_chain(mk(3))
        g = link_graph(s)
        assert set(g.nodes) == {"host", 0, 1, 2}

    def test_path_between(self):
        s = build_chain(mk(4))
        assert path_between(s, 0, 3) == [0, 1, 2, 3]
        s2 = mk(2)
        s2.attach_host(0, 0)
        assert path_between(s2, 0, 1) is None

    def test_hop_count_matrix(self):
        s = build_ring(mk(4))
        m = hop_count_matrix(s)
        assert m[0, 0] == 0
        assert m[0, 1] == 1
        assert m[0, 2] == 2  # opposite corner of the ring
        assert m[0, 3] == 1  # wraparound

    def test_hop_matrix_marks_unreachable(self):
        s = mk(2)
        s.attach_host(0, 0)
        m = hop_count_matrix(s)
        assert m[0, 1] == -1

    def test_host_distance(self):
        s = build_chain(mk(3))
        d = host_distance(s)
        assert d == {0: 1, 1: 2, 2: 3}
        assert mean_host_distance(s) == pytest.approx(2.0)

    def test_ring_shortens_mean_distance_vs_chain(self):
        """The Figure 1 topologies differ in host distance — rings beat
        chains for the far devices."""
        chain = build_chain(mk(6))
        ring = build_ring(mk(6))
        assert mean_host_distance(ring) < mean_host_distance(chain)
