"""Tests for the open-row DRAM timing policy (ablation)."""

import pytest

from repro.core.bank import Bank
from repro.core.errors import InitError
from repro.core.simulator import HMCSim
from repro.core.config import SimConfig
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.workloads.stream import stream_requests
from repro.workloads.random_access import RandomAccessConfig, random_access_requests


class TestBankRowTiming:
    def test_closed_policy_constant_time(self):
        b = Bank(0, 1 << 20)
        assert b.access_busy_cycles(row=5, closed_cycles=11) == 11
        assert b.access_busy_cycles(row=5, closed_cycles=11) == 11
        assert b.row_hits == 0 and b.row_misses == 0

    def test_open_policy_miss_then_hits(self):
        b = Bank(0, 1 << 20)
        first = b.access_busy_cycles(5, 11, open_policy=True,
                                     hit_cycles=4, miss_cycles=16)
        assert first == 16  # cold row: miss
        again = b.access_busy_cycles(5, 11, open_policy=True,
                                     hit_cycles=4, miss_cycles=16)
        assert again == 4   # same row: hit
        other = b.access_busy_cycles(6, 11, open_policy=True,
                                     hit_cycles=4, miss_cycles=16)
        assert other == 16  # row change: miss again
        assert (b.row_hits, b.row_misses) == (1, 2)

    def test_reset_closes_rows(self):
        b = Bank(0, 1 << 20)
        b.access_busy_cycles(5, 11, open_policy=True, hit_cycles=4, miss_cycles=16)
        b.reset()
        assert b.open_row == -1
        assert b.row_hits == 0


class TestConfigValidation:
    def test_policy_values(self):
        SimConfig(row_policy="open")
        with pytest.raises(InitError):
            SimConfig(row_policy="adaptive")

    def test_cycle_bounds(self):
        with pytest.raises(InitError):
            SimConfig(row_hit_cycles=-1)


def run_policy(policy, requests, **cfg_kw):
    sim = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2,
                 row_policy=policy, **cfg_kw)
    build_simple(sim)
    host = Host(sim)
    res = host.run(list(requests))
    hits = sum(b.row_hits for v in sim.devices[0].vaults for b in v.banks)
    misses = sum(b.row_misses for v in sim.devices[0].vaults for b in v.banks)
    return res, hits, misses


class TestEndToEnd:
    def test_open_policy_tracks_hits(self):
        # A repeated same-row stream is all hits after the cold miss.
        reqs = [(CMD.RD64, 0x40, None)] * 16
        res, hits, misses = run_policy("open", reqs,
                                       row_hit_cycles=2, row_miss_cycles=16)
        assert misses >= 1
        assert hits >= 14

    def test_closed_policy_records_no_row_stats(self):
        reqs = [(CMD.RD64, 0x40, None)] * 8
        res, hits, misses = run_policy("closed", reqs)
        assert hits == 0 and misses == 0

    def test_row_locality_speeds_up_open_policy(self):
        """Row-local traffic under the open policy beats the closed
        model; row-thrashing traffic pays the miss penalty."""
        local = [(CMD.RD64, 0x40, None)] * 64          # one row
        n_thrash = 64
        thrash = [(CMD.RD64, (i * 16 * 4096) % (1 << 30), None)
                  for i in range(n_thrash)]            # new row each time

        local_open, _, _ = run_policy("open", local,
                                      row_hit_cycles=2, row_miss_cycles=20)
        local_closed, _, _ = run_policy("closed", local)
        assert local_open.cycles < local_closed.cycles

        thrash_open, hits, misses = run_policy("open", thrash,
                                               row_hit_cycles=2,
                                               row_miss_cycles=20)
        assert misses > hits

    def test_random_access_completes_under_open_policy(self):
        cfg = RandomAccessConfig(num_requests=256)
        res, hits, misses = run_policy(
            "open", random_access_requests(2 << 30, cfg),
            row_hit_cycles=4, row_miss_cycles=16)
        assert res.responses_received == 256
        assert hits + misses == 256
