"""Unit tests for the HMC 1.0 command set (repro.packets.commands)."""

import pytest

from repro.packets.commands import (
    CMD,
    CommandClass,
    POSTED_WRITE_CMD_FOR_BYTES,
    READ_CMD_FOR_BYTES,
    REQUEST_DATA_BYTES,
    WRITE_CMD_FOR_BYTES,
    all_flow_commands,
    all_request_commands,
    all_response_commands,
    command_class,
    expects_response,
    is_atomic,
    is_flow,
    is_posted,
    is_read,
    is_request,
    is_response,
    is_write,
    request_flits,
    response_cmd_for,
    response_flits,
)


class TestEncodings:
    def test_read_command_encodings_match_spec(self):
        assert CMD.RD16 == 0x30
        assert CMD.RD128 == 0x37

    def test_write_command_encodings_match_spec(self):
        assert CMD.WR16 == 0x08
        assert CMD.WR128 == 0x0F

    def test_posted_write_encodings_offset_by_0x10(self):
        for n in (16, 32, 48, 64, 80, 96, 112, 128):
            assert POSTED_WRITE_CMD_FOR_BYTES[n] == WRITE_CMD_FOR_BYTES[n] + 0x10

    def test_flow_encodings(self):
        assert CMD.NULL == 0x00
        assert CMD.PRET == 0x01
        assert CMD.TRET == 0x02
        assert CMD.IRTRY == 0x03

    def test_response_encodings(self):
        assert CMD.RD_RS == 0x38
        assert CMD.WR_RS == 0x39
        assert CMD.ERROR == 0x3E

    def test_all_commands_fit_6_bits(self):
        for c in CMD:
            assert 0 <= int(c) < 64


class TestClassification:
    def test_every_command_classifies(self):
        for c in CMD:
            assert isinstance(command_class(c), CommandClass)

    def test_reads(self):
        assert command_class(CMD.RD64) is CommandClass.READ
        assert is_read(CMD.RD16)
        assert not is_read(CMD.WR16)
        assert not is_read(CMD.MD_RD)

    def test_writes_include_posted_and_bwr(self):
        assert is_write(CMD.WR64)
        assert is_write(CMD.P_WR64)
        assert is_write(CMD.BWR)
        assert not is_write(CMD.RD64)

    def test_atomics(self):
        assert is_atomic(CMD.ADD16)
        assert is_atomic(CMD.P_2ADD8)
        assert command_class(CMD.TWOADD8) is CommandClass.ATOMIC
        assert command_class(CMD.P_ADD16) is CommandClass.POSTED_ATOMIC

    def test_mode_commands(self):
        assert command_class(CMD.MD_RD) is CommandClass.MODE_READ
        assert command_class(CMD.MD_WR) is CommandClass.MODE_WRITE

    def test_flow(self):
        for c in (CMD.NULL, CMD.PRET, CMD.TRET, CMD.IRTRY):
            assert is_flow(c)
            assert command_class(c) is CommandClass.FLOW

    def test_request_response_partition(self):
        for c in CMD:
            assert is_request(c) != is_response(c)

    def test_invalid_command_raises(self):
        with pytest.raises(ValueError):
            command_class(0x3F)


class TestPostedSemantics:
    def test_posted_writes_never_expect_response(self):
        for c in POSTED_WRITE_CMD_FOR_BYTES.values():
            assert is_posted(c)
            assert not expects_response(c)

    def test_posted_atomics(self):
        assert is_posted(CMD.P_ADD16)
        assert is_posted(CMD.P_2ADD8)
        assert not expects_response(CMD.P_BWR)

    def test_nonposted_expect_response(self):
        for c in (CMD.RD64, CMD.WR64, CMD.ADD16, CMD.MD_RD, CMD.MD_WR, CMD.BWR):
            assert expects_response(c)

    def test_flow_never_expects_response(self):
        for c in all_flow_commands():
            assert not expects_response(c)


class TestFlitRules:
    def test_reads_are_single_flit(self):
        """Paper III.C: read requests are always one FLIT."""
        for c in READ_CMD_FOR_BYTES.values():
            assert request_flits(c) == 1

    def test_writes_span_2_to_9_flits(self):
        """Paper III.C: write requests have widths of 2-9 FLITs."""
        for size, c in WRITE_CMD_FOR_BYTES.items():
            assert request_flits(c) == 1 + size // 16
        assert request_flits(CMD.WR16) == 2
        assert request_flits(CMD.WR128) == 9

    def test_flow_is_single_flit(self):
        for c in all_flow_commands():
            assert request_flits(c) == 1

    def test_request_flits_rejects_responses(self):
        with pytest.raises(ValueError):
            request_flits(CMD.RD_RS)

    def test_read_response_flits(self):
        assert response_flits(CMD.RD16) == 2
        assert response_flits(CMD.RD64) == 5
        assert response_flits(CMD.RD128) == 9

    def test_write_response_is_single_flit(self):
        for c in WRITE_CMD_FOR_BYTES.values():
            assert response_flits(c) == 1

    def test_posted_yield_zero_response_flits(self):
        for c in POSTED_WRITE_CMD_FOR_BYTES.values():
            assert response_flits(c) == 0

    def test_atomic_response_carries_operand(self):
        assert response_flits(CMD.ADD16) == 2
        assert response_flits(CMD.TWOADD8) == 2

    def test_mode_read_response(self):
        assert response_flits(CMD.MD_RD) == 2
        assert response_flits(CMD.MD_WR) == 1


class TestResponseMapping:
    def test_read_maps_to_rd_rs(self):
        assert response_cmd_for(CMD.RD64) is CMD.RD_RS

    def test_atomic_maps_to_rd_rs(self):
        assert response_cmd_for(CMD.ADD16) is CMD.RD_RS

    def test_write_maps_to_wr_rs(self):
        assert response_cmd_for(CMD.WR32) is CMD.WR_RS
        assert response_cmd_for(CMD.BWR) is CMD.WR_RS

    def test_mode_mapping(self):
        assert response_cmd_for(CMD.MD_RD) is CMD.MD_RD_RS
        assert response_cmd_for(CMD.MD_WR) is CMD.MD_WR_RS

    def test_posted_has_no_response_cmd(self):
        with pytest.raises(ValueError):
            response_cmd_for(CMD.P_WR64)


class TestEnumerations:
    def test_request_commands_exclude_flow_and_responses(self):
        reqs = all_request_commands()
        assert CMD.RD64 in reqs
        assert CMD.NULL not in reqs
        assert CMD.RD_RS not in reqs

    def test_partition_covers_all_commands(self):
        union = set(all_request_commands()) | set(all_flow_commands()) | set(
            all_response_commands()
        )
        assert union == set(CMD)

    def test_request_data_bytes_covers_data_commands(self):
        for c in all_request_commands():
            assert c in REQUEST_DATA_BYTES
