"""Golden equivalence: ``scheduler="active"`` vs ``scheduler="naive"``.

The active-set clock engine (repro.core.clock) promises bit-for-bit
semantics: for any workload, both schedulers must produce identical
total cycle counts, identical binary trace byte streams, identical
per-stage work counters and identical final register-file contents.
This module drives the four Table I configurations, a chained
two-device topology, an ECC-enabled device and a kitchen-sink engine
configuration through both schedulers and asserts exactly that.
"""

from __future__ import annotations

import io
import itertools

import pytest

import repro.packets.packet as packet_mod
from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.topology.builder import build_chain
from repro.trace.binfmt import BinarySink
from repro.trace.events import EventType
from repro.workloads.random_access import (
    RandomAccessConfig,
    random_access_requests,
)

# The four paper configurations (Table I), scaled request counts.
TABLE1 = {
    "4L8B2G": DeviceConfig(num_links=4, num_banks=8, capacity=2),
    "4L16B4G": DeviceConfig(num_links=4, num_banks=16, capacity=4),
    "8L8B4G": DeviceConfig(num_links=8, num_banks=8, capacity=4),
    "8L16B8G": DeviceConfig(num_links=8, num_banks=16, capacity=8),
}


def _fingerprint(sim: HMCSim, sink: BinarySink, buf: io.BytesIO) -> dict:
    """Everything the equivalence contract covers, in comparable form."""
    return {
        "cycles": sim.clock_value,
        "stage_counts": list(sim.engine.stage_counts),
        "trace_bytes": buf.getvalue(),
        "trace_records": sink.records,
        "registers": [d.regs.snapshot() for d in sim.devices],
        "stats": sim.stats(),
        "routed_remote": sum(
            x.routed_remote for d in sim.devices for x in d.xbars
        ),
    }


def _drive(
    scheduler: str,
    device: DeviceConfig,
    *,
    num_devs: int = 1,
    num_requests: int = 600,
    chain: bool = False,
    mask: EventType = EventType.STANDARD,
    idle_tail: int = 500,
    **engine_kw,
) -> dict:
    """Run one deterministic workload under *scheduler*, fingerprint it.

    The global packet serial counter is reset first so trace streams
    from consecutive runs are byte-comparable.
    """
    packet_mod._packet_serial = itertools.count()
    scfg = SimConfig(
        device=device, num_devs=num_devs, scheduler=scheduler, **engine_kw
    )
    sim = HMCSim(scfg)
    if chain:
        build_chain(sim, host_links=2)
    else:
        for link in range(device.num_links):
            sim.attach_host(0, link)
    buf = io.BytesIO()
    sink = BinarySink(buf, num_vaults=device.num_vaults)
    sim.tracer.mask = mask
    sim.tracer.add_sink(sink)

    host = Host(sim)
    racfg = RandomAccessConfig(num_requests=num_requests, seed=7)
    stream = random_access_requests(device.capacity_bytes, racfg)
    if chain:
        # Interleave targets across the chain so remote routing and the
        # cross-chain response stages carry real traffic.
        ndev = num_devs
        stream = (
            (cmd, addr, payload)
            for i, (cmd, addr, payload) in enumerate(stream)
        )
        reqs = list(stream)
        host.run(
            ((cmd, addr, payload) for (cmd, addr, payload) in reqs[::2]),
            cub=0,
        )
        host.run(
            ((cmd, addr, payload) for (cmd, addr, payload) in reqs[1::2]),
            cub=ndev - 1,
        )
    else:
        host.run(stream, cub=0)
    if idle_tail:
        # Quiescent stretch: the active scheduler fast-forwards this in
        # closed form; the naive scheduler ticks every cycle.  The
        # fingerprints must match regardless.
        sim.run(idle_tail)
    fp = _fingerprint(sim, sink, buf)
    # Retire shard workers eagerly (no-op for the serial engine) so
    # multi-process runs don't leave children to the garbage collector.
    sim.engine.shutdown()
    return fp


def _assert_identical(a: dict, b: dict) -> None:
    assert a["cycles"] == b["cycles"]
    assert a["stage_counts"] == b["stage_counts"]
    assert a["trace_records"] == b["trace_records"]
    assert a["trace_bytes"] == b["trace_bytes"]
    assert a["registers"] == b["registers"]
    assert a["stats"] == b["stats"]
    assert a["routed_remote"] == b["routed_remote"]


@pytest.mark.parametrize("label", sorted(TABLE1))
def test_table1_configs_bit_identical(label):
    device = TABLE1[label]
    naive = _drive("naive", device)
    active = _drive("active", device)
    _assert_identical(naive, active)
    # Sanity: the workload actually did something.
    assert active["cycles"] > 0
    assert active["trace_records"] > 0


def test_chained_topology_bit_identical():
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    naive = _drive("naive", device, num_devs=2, chain=True, num_requests=400)
    active = _drive("active", device, num_devs=2, chain=True, num_requests=400)
    _assert_identical(naive, active)
    # The chain run must exercise the remote-routing path.
    assert active["routed_remote"] > 0


def test_ecc_enabled_bit_identical():
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2, ecc_enabled=True)
    naive = _drive("naive", device, num_requests=400, ras_seed=11)
    active = _drive("active", device, num_requests=400, ras_seed=11)
    _assert_identical(naive, active)


def test_kitchen_sink_engine_options_bit_identical():
    """Refresh + rotating arbitration + queue timeouts all at once."""
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    kw = dict(
        refresh_interval=40,
        refresh_cycles=8,
        xbar_arbitration="rotating",
        queue_timeout=200,
    )
    naive = _drive("naive", device, num_requests=400, **kw)
    active = _drive("active", device, num_requests=400, **kw)
    _assert_identical(naive, active)


def test_fault_injected_chain_bit_identical():
    """BER > 0 on every link of a chained config: retries, replay
    windows and per-link RNG draws must land on the same cycles under
    both schedulers — bit-for-bit, including the LRS registers."""
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    kw = dict(link_ber=2e-4, link_drop_rate=0.002, link_seed=3)
    naive = _drive("naive", device, num_devs=2, chain=True,
                   num_requests=300, **kw)
    active = _drive("active", device, num_devs=2, chain=True,
                    num_requests=300, **kw)
    _assert_identical(naive, active)
    faults = active["stats"]["link_faults"]
    assert sum(v["irtry_events"] for v in faults.values()) > 0
    assert sum(v["recovery_cycles"] for v in faults.values()) > 0
    assert sum(v["recovered"] for v in faults.values()) > 0


def test_fault_injection_costs_cycles():
    """Seeded BER > 0 must measurably stretch the run vs BER = 0."""
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    clean = _drive("naive", device, num_devs=2, chain=True,
                   num_requests=300)
    noisy = _drive("naive", device, num_devs=2, chain=True,
                   num_requests=300,
                   link_ber=2e-4, link_drop_rate=0.002, link_seed=3)
    assert noisy["cycles"] > clean["cycles"]
    assert "link_faults" not in clean["stats"]  # baseline keys untouched


def test_watchdog_armed_fault_free_bit_identical():
    """An armed-but-silent watchdog must not perturb equivalence (the
    active scheduler clamps its idle fast-forward to the deadline)."""
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    kw = dict(watchdog_cycles=100, link_ber=1e-5, link_seed=9)
    naive = _drive("naive", device, num_devs=2, chain=True,
                   num_requests=200, idle_tail=400, **kw)
    active = _drive("active", device, num_devs=2, chain=True,
                    num_requests=200, idle_tail=400, **kw)
    _assert_identical(naive, active)


def test_subcycle_tracing_bit_identical():
    """SUBCYCLE markers are per-cycle events: they disable fast-forward
    and must appear for every cycle under both schedulers."""
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    naive = _drive(
        "naive", device, num_requests=128, mask=EventType.ALL, idle_tail=64
    )
    active = _drive(
        "active", device, num_requests=128, mask=EventType.ALL, idle_tail=64
    )
    _assert_identical(naive, active)


class TestBatchedStepping:
    """run(n) / clock_until / is_quiescent surface semantics."""

    def _sim(self, scheduler="active"):
        scfg = SimConfig(
            device=DeviceConfig(num_links=4, num_banks=8, capacity=2),
            scheduler=scheduler,
        )
        sim = HMCSim(scfg)
        sim.attach_host(0, 0)
        return sim

    def test_run_advances_exactly_n_cycles(self):
        sim = self._sim()
        sim.run(1000)
        assert sim.clock_value == 1000
        assert sim.engine.stage_counts[6] == 1000

    def test_run_matches_naive_stat_register(self):
        fast, slow = self._sim("active"), self._sim("naive")
        fast.run(777)
        slow.run(777)
        assert fast.devices[0].regs.snapshot() == slow.devices[0].regs.snapshot()

    def test_is_quiescent_tracks_in_flight_work(self):
        from repro.packets.commands import CMD
        from repro.packets.packet import build_memrequest

        sim = self._sim()
        assert sim.is_quiescent
        sim.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))
        assert not sim.is_quiescent
        sim.clock_until(lambda s: s.is_quiescent, max_cycles=100)
        assert sim.is_quiescent

    def test_clock_until_counts_and_short_circuits(self):
        sim = self._sim()
        assert sim.clock_until(lambda s: True) == 0
        n = sim.clock_until(lambda s: s.clock_value >= 42)
        assert n == 42
        assert sim.clock_value == 42

    def test_clock_until_raises_past_budget(self):
        from repro.core.errors import HMCError

        sim = self._sim()
        with pytest.raises(HMCError):
            sim.clock_until(lambda s: False, max_cycles=10)


class TestShardedEngineEquivalence:
    """Golden equivalence: ``workers=2`` (sharded engine) vs ``workers=1``.

    The multi-process cycle engine (repro.parallel.engine) promises the
    same bit-for-bit contract the scheduler pair does: identical total
    cycles, identical binary trace byte streams, identical per-stage
    work counters, registers and statistics.  Every configuration
    family of the serial suite is re-run here with the simulation
    sharded across two worker processes, under both schedulers.
    """

    @pytest.mark.parametrize("scheduler", ("naive", "active"))
    @pytest.mark.parametrize("label", sorted(TABLE1))
    def test_table1_configs(self, label, scheduler):
        device = TABLE1[label]
        serial = _drive(scheduler, device)
        sharded = _drive(scheduler, device, workers=2)
        _assert_identical(serial, sharded)
        assert sharded["trace_records"] > 0

    @pytest.mark.parametrize("scheduler", ("naive", "active"))
    def test_chained_topology(self, scheduler):
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        serial = _drive(scheduler, device, num_devs=2, chain=True,
                        num_requests=400)
        sharded = _drive(scheduler, device, num_devs=2, chain=True,
                         num_requests=400, workers=2)
        _assert_identical(serial, sharded)
        assert sharded["routed_remote"] > 0

    @pytest.mark.parametrize("scheduler", ("naive", "active"))
    def test_fault_injected_chain(self, scheduler):
        """Link BER/drops + retries land on the same cycles sharded."""
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        kw = dict(link_ber=2e-4, link_drop_rate=0.002, link_seed=3)
        serial = _drive(scheduler, device, num_devs=2, chain=True,
                        num_requests=300, **kw)
        sharded = _drive(scheduler, device, num_devs=2, chain=True,
                         num_requests=300, workers=2, **kw)
        _assert_identical(serial, sharded)
        faults = sharded["stats"]["link_faults"]
        assert sum(v["irtry_events"] for v in faults.values()) > 0

    @pytest.mark.parametrize("scheduler", ("naive", "active"))
    def test_ecc_config(self, scheduler):
        """ECC shards fall back to the serial engine at construction
        (the RAS sub-step scrubs bank storage master-side) — results
        must still be identical with workers requested."""
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2,
                              ecc_enabled=True)
        serial = _drive(scheduler, device, num_requests=400, ras_seed=11)
        sharded = _drive(scheduler, device, num_requests=400, ras_seed=11,
                         workers=2)
        _assert_identical(serial, sharded)

    def test_kitchen_sink_engine_options(self):
        """Refresh + rotating arbitration + queue timeouts, sharded."""
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        kw = dict(refresh_interval=40, refresh_cycles=8,
                  xbar_arbitration="rotating", queue_timeout=200)
        serial = _drive("active", device, num_requests=400, **kw)
        sharded = _drive("active", device, num_requests=400, workers=2, **kw)
        _assert_identical(serial, sharded)

    def test_vault_strategy_single_device(self):
        """Explicit per-vault-group sharding on a single cube."""
        device = TABLE1["4L8B2G"]
        serial = _drive("active", device)
        sharded = _drive("active", device, workers=2,
                         shard_strategy="vault")
        _assert_identical(serial, sharded)

    def test_subcycle_tracing_falls_back(self):
        """SUBCYCLE markers are per-tick master-side events: the
        sharded engine detects the live mask and reverts to serial
        execution mid-run, still bit-identical."""
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        serial = _drive("active", device, num_requests=128,
                        mask=EventType.ALL, idle_tail=64)
        sharded = _drive("active", device, num_requests=128,
                         mask=EventType.ALL, idle_tail=64, workers=2)
        _assert_identical(serial, sharded)
