"""Unit tests for the register subsystem (repro.registers)."""

import pytest

from repro.core.errors import RegisterAccessError
from repro.registers.jtag import JTAGInterface
from repro.registers.regdefs import (
    NUM_REGISTERS,
    REGISTER_MAP,
    RegClass,
    index_by_name,
    is_valid_physical,
    linear_index,
    physical_index,
)
from repro.registers.regfile import RegisterFile


class TestRegisterMap:
    def test_physical_indices_are_sparse_and_nonzero(self):
        """Paper IV.D: indexing is not purely linear, does not start at 0."""
        phys = [r.phys for r in REGISTER_MAP]
        assert 0 not in phys
        assert sorted(phys) != list(range(min(phys), min(phys) + len(phys)))

    def test_physical_indices_unique(self):
        phys = [r.phys for r in REGISTER_MAP]
        assert len(set(phys)) == len(phys)

    def test_translation_round_trip(self):
        for i in range(NUM_REGISTERS):
            assert linear_index(physical_index(i)) == i

    def test_unknown_physical_raises(self):
        with pytest.raises(KeyError):
            linear_index(0xDEAD)
        assert not is_valid_physical(0xDEAD)

    def test_index_by_name(self):
        assert REGISTER_MAP[index_by_name("GC")].name == "GC"

    def test_all_three_classes_present(self):
        classes = {r.cls for r in REGISTER_MAP}
        assert classes == {RegClass.RW, RegClass.RO, RegClass.RWS}

    def test_expected_registers_exist(self):
        names = {r.name for r in REGISTER_MAP}
        for expected in ("EDR0", "ERR", "GC", "LC0", "LIC7", "MC", "STAT"):
            assert expected in names


class TestRegisterFile:
    def test_reset_values(self):
        rf = RegisterFile()
        for r in REGISTER_MAP:
            assert rf.read(r.name) == r.reset

    def test_rw_write_read(self):
        rf = RegisterFile()
        rf.write("EDR0", 0x1234)
        assert rf.read("EDR0") == 0x1234

    def test_values_masked_to_64_bits(self):
        rf = RegisterFile()
        rf.write("EDR1", 1 << 70)
        assert rf.read("EDR1") == 0

    def test_ro_write_rejected(self):
        rf = RegisterFile()
        with pytest.raises(RegisterAccessError):
            rf.write("ERR", 1)
        with pytest.raises(RegisterAccessError):
            rf.write_phys(physical_index(index_by_name("STAT")), 1)

    def test_internal_write_bypasses_ro(self):
        rf = RegisterFile()
        rf.internal_write("ERR", 0x7)
        assert rf.read("ERR") == 0x7

    def test_rws_self_clears_on_tick(self):
        """Paper IV.D: self-clearing after being written to."""
        rf = RegisterFile()
        rf.write("GC", 0xFF)
        assert rf.read("GC") == 0xFF  # visible within the cycle
        rf.tick()
        assert rf.read("GC") == 0

    def test_rw_survives_tick(self):
        rf = RegisterFile()
        rf.write("EDR0", 5)
        rf.tick()
        assert rf.read("EDR0") == 5

    def test_phys_access(self):
        rf = RegisterFile()
        phys = physical_index(index_by_name("MC"))
        rf.write_phys(phys, 3)
        assert rf.read_phys(phys) == 3

    def test_unknown_phys_raises(self):
        rf = RegisterFile()
        with pytest.raises(RegisterAccessError):
            rf.read_phys(0x1)
        with pytest.raises(RegisterAccessError):
            rf.write_phys(0x1, 0)

    def test_access_counters(self):
        rf = RegisterFile()
        rf.write("EDR0", 1)
        rf.read("EDR0")
        rf.internal_read("EDR0")  # not host-visible accounting
        assert rf.write_count == 1
        assert rf.read_count == 1

    def test_snapshot(self):
        rf = RegisterFile()
        rf.write("EDR2", 42)
        snap = rf.snapshot()
        assert snap["EDR2"] == 42
        assert len(snap) == NUM_REGISTERS

    def test_reset(self):
        rf = RegisterFile()
        rf.write("EDR0", 9)
        rf.write("GC", 1)
        rf.reset()
        assert rf.read("EDR0") == 0
        assert rf.read("GC") == 0
        rf.tick()  # pending clears must not resurrect anything


class TestJTAG:
    def test_side_band_read_write(self):
        rf = RegisterFile()
        j = JTAGInterface(rf)
        phys = physical_index(index_by_name("EDR3"))
        j.reg_write(phys, 0xCAFE)
        assert j.reg_read(phys) == 0xCAFE
        assert (j.reads, j.writes) == (1, 1)

    def test_class_rules_still_apply(self):
        rf = RegisterFile()
        j = JTAGInterface(rf)
        with pytest.raises(RegisterAccessError):
            j.reg_write(physical_index(index_by_name("ERR")), 1)
