"""Tests for the pointer-chase workload (repro.workloads.pointer_chase)."""

import pytest

from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.topology.builder import build_simple
from repro.workloads.pointer_chase import (
    ChaseResult,
    build_chase_table,
    pointer_chase_run,
)


class TestChaseTable:
    def test_single_cycle_permutation(self):
        """Following the successor pointers visits every node once."""
        table = build_chase_table(64, node_bytes=16, seed=3)
        addr = 0
        seen = set()
        for _ in range(64):
            assert addr not in seen
            seen.add(addr)
            addr = table[addr // 16]
        assert addr == 0  # cycle closes
        assert len(seen) == 64

    def test_addresses_are_node_aligned(self):
        for a in build_chase_table(32, node_bytes=64, seed=1):
            assert a % 64 == 0

    def test_region_offset(self):
        table = build_chase_table(8, node_bytes=16, seed=1, region_offset=1 << 20)
        assert all(a >= 1 << 20 for a in table)

    def test_deterministic_by_seed(self):
        assert build_chase_table(32, seed=4) == build_chase_table(32, seed=4)
        assert build_chase_table(32, seed=4) != build_chase_table(32, seed=5)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            build_chase_table(1)


class TestChaseRun:
    def test_small_chase_completes(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        host = Host(sim)
        result = pointer_chase_run(sim, host, num_nodes=16, hops=16)
        assert isinstance(result, ChaseResult)
        assert result.hops == 16
        assert len(result.latencies) == 16
        assert result.mean_latency > 0
        assert result.cycles >= sum(result.latencies) * 0  # sanity

    def test_chase_is_latency_bound(self):
        """Dependent reads cannot pipeline: total cycles ~ sum of
        per-hop latencies, far above 1 request/cycle throughput."""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        host = Host(sim)
        result = pointer_chase_run(sim, host, num_nodes=32, hops=32)
        assert result.cycles >= result.hops * 2  # every hop costs cycles

    def test_bad_node_size(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        host = Host(sim)
        with pytest.raises(ValueError):
            pointer_chase_run(sim, host, num_nodes=8, hops=2, node_bytes=24)
