"""Loaded-path overhaul: batched tracing, profiling, perf satellites.

Covers the invariants the batched trace pipeline must preserve —
batched sink output identical to unbatched, aggregate sinks agreeing
with the event-by-event reference — plus the engine profiler CLI
surface, the sweep worker override and the wall-clock throughput
metric.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.trace.binfmt import BinarySink, parse_binary
from repro.trace.events import EventType, TraceEvent
from repro.trace.parse import parse_ndjson
from repro.trace.stats import TraceStats
from repro.trace.tracer import (
    CountingSink,
    MemorySink,
    NDJSONSink,
    StatsSink,
    Tracer,
)
from repro.workloads.random_access import (
    RandomAccessConfig,
    random_access_requests,
    run_random_access,
)


def _traced_run(sinks, mask=EventType.STANDARD, requests=192):
    """Small loaded Table I run with *sinks* attached; returns the sim."""
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    sim = HMCSim(SimConfig(device=device))
    for link in range(device.num_links):
        sim.attach_host(0, link)
    sim.set_trace_mask(mask)
    for sink in sinks:
        sim.add_trace_sink(sink)
    host = Host(sim)
    cfg = RandomAccessConfig(num_requests=requests)
    host.run(random_access_requests(device.capacity_bytes, cfg), cub=0)
    return sim


class TestBatchedSinkEquivalence:
    def test_binary_batched_equals_unbatched(self):
        """The tracer's batched tuple path must produce byte-identical
        binary output to per-event encoding of the same stream."""
        batched_buf = io.BytesIO()
        batched = BinarySink(batched_buf, num_vaults=32)
        mem = MemorySink()
        _traced_run([batched, mem])

        reference_buf = io.BytesIO()
        reference = BinarySink(reference_buf, num_vaults=32)
        for ev in mem.events:
            reference.emit(ev)
        assert batched_buf.getvalue() == reference_buf.getvalue()
        assert batched.records == reference.records == len(mem.events)

    def test_binary_extras_fallback_matches_json(self):
        """Extras the manual encoder cannot handle fall back to
        json.dumps with identical bytes."""
        cases = [
            (("addr", 4096), ("bwr", True)),
            (("busy", False), ("n", -3)),
            (("weird key", 1),),          # non-identifier key
            (("s", "text"),),             # string value
            (("f", 1.5),),                # float value
            (("nested", {"a": 1}),),      # dict value
        ]
        t = Tracer(mask=EventType.ALL)
        buf = io.BytesIO()
        t.add_sink(BinarySink(buf, num_vaults=8))
        for i, pairs in enumerate(cases):
            t.emit_fast(int(EventType.RQST_READ), i, 0, -1, 0, 1, 2, -1, i,
                        pairs)
        t.flush()

        ref = io.BytesIO()
        ref_sink = BinarySink(ref, num_vaults=8)
        for i, pairs in enumerate(cases):
            ref_sink.emit(TraceEvent(
                type=EventType.RQST_READ, cycle=i, dev=0, quad=0, vault=1,
                bank=2, serial=i, extra=dict(pairs),
            ))
        assert buf.getvalue() == ref.getvalue()
        events = list(parse_binary(io.BytesIO(buf.getvalue())))
        assert [e.extra for e in events] == [dict(p) for p in cases]

    def test_ndjson_flush_every_output_identical(self):
        """Any flush_every setting yields the same NDJSON bytes after
        close(), and parses back to the same events."""
        mem = MemorySink()
        _traced_run([mem], requests=96)
        outputs = {}
        for fe in (1, 7, 64, 10_000):
            stream = io.StringIO()
            sink = NDJSONSink(stream, flush_every=fe)
            for ev in mem.events:
                sink.emit(ev)
            sink.close()
            outputs[fe] = stream.getvalue()
        assert len(set(outputs.values())) == 1
        parsed = list(parse_ndjson(io.StringIO(outputs[1])))
        assert len(parsed) == len(mem.events)
        assert parsed[0].type == mem.events[0].type

    def test_ndjson_flush_every_bounds_buffering(self):
        stream = io.StringIO()
        sink = NDJSONSink(stream, flush_every=4)
        ev = TraceEvent(type=EventType.RQST_READ, cycle=1, vault=0)
        for _ in range(3):
            sink.emit(ev)
        assert stream.getvalue() == ""  # still pending
        sink.emit(ev)
        assert stream.getvalue().count("\n") == 4  # batch written out
        sink.close()

    def test_aggregate_sinks_match_memory_reference(self):
        """StatsSink and CountingSink totals must equal event-by-event
        counts over a MemorySink on the same traced run."""
        mem = MemorySink()
        counting = CountingSink()
        stats = TraceStats(num_vaults=32)
        _traced_run([mem, counting, StatsSink(stats)])

        reference: dict = {}
        for ev in mem.events:
            reference[ev.type] = reference.get(ev.type, 0) + 1
        assert sum(reference.values()) > 0
        assert counting.counts == reference
        assert stats.events_seen == len(mem.events)
        for etype, n in reference.items():
            assert stats.totals.get(etype, 0) == n
        # Per-vault series must agree with the reference too.
        read_per_vault = [0] * 32
        for ev in mem.events:
            if ev.type is EventType.RQST_READ:
                read_per_vault[ev.vault] += 1
        got = stats.vault_matrix(EventType.RQST_READ).sum(axis=0)
        assert list(got) == read_per_vault

    def test_sink_state_exact_between_advances(self):
        """Batching must never be observable at a stepping boundary."""
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        sim = HMCSim(SimConfig(device=device))
        sim.attach_host(0, 0)
        sim.set_trace_mask(EventType.STANDARD)
        buf = io.BytesIO()
        sink = sim.add_trace_sink(BinarySink(buf, num_vaults=32))
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=32)
        host.run(random_access_requests(device.capacity_bytes, cfg), cub=0)
        # Raw stream read — no sink accessor, no close(): the bytes must
        # already be complete at the run() boundary.
        events = list(parse_binary(io.BytesIO(buf.getvalue())))
        assert len(events) == sink.records > 0


class TestProfiler:
    def test_profiler_buckets_cover_run(self):
        from repro.analysis.profiling import attach, render

        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        sim = HMCSim(SimConfig(device=device))
        sim.attach_host(0, 0)
        prof = attach(sim)
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=64)
        host.run(random_access_requests(device.capacity_bytes, cfg), cub=0)
        assert prof.ticks > 0
        assert prof.total_stage_ns() > 0
        assert all(ns >= 0 for ns in prof.stage_ns)
        text = render(prof, sim.engine.stage_counts)
        assert "stage 4: vault request processing" in text
        report = prof.report(sim.engine.stage_counts)
        assert report["ticks"] == prof.ticks
        assert report["stages"]["4"]["count"] == sim.engine.stage_counts[4]

    def test_cli_bandwidth_profile_flag(self, capsys, tmp_path):
        from repro.cli import main

        stats_json = tmp_path / "stats.json"
        assert main(["bandwidth", "--requests", "64", "--profile",
                     "--stats-json", str(stats_json)]) == 0
        out = capsys.readouterr().out
        assert "engine profile" in out
        assert "stage 4: vault request processing" in out
        assert "requests/sec" in out
        tree = json.loads(stats_json.read_text())
        assert "profile" in tree
        assert tree["profile"]["ticks"] > 0
        assert set(tree["profile"]["stages"]) == {str(i) for i in range(1, 7)}

    def test_cli_replay_profile_flag(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "trace.txt"
        trace.write_text("R 0x0 64\nW 0x40 64\nR 0x80 64\n")
        assert main(["replay", str(trace), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine profile" in out


class TestPerfSatellites:
    def test_sweep_workers_env_override(self, monkeypatch):
        from repro.analysis.sweep import default_workers

        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "3")
        assert default_workers() == 3
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        assert default_workers() == 1
        # Invalid / non-positive values are rejected with a clear error
        # naming the offending value, instead of crashing deep in the
        # process-pool setup.
        for bad in ("bogus", "0", "-2", "1.5"):
            monkeypatch.setenv("REPRO_SWEEP_WORKERS", bad)
            with pytest.raises(ValueError, match="REPRO_SWEEP_WORKERS"):
                default_workers()
        # Empty/whitespace counts as unset: heuristic applies.
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "  ")
        assert default_workers() >= 1
        monkeypatch.delenv("REPRO_SWEEP_WORKERS")
        assert default_workers() >= 1

    def test_requests_per_sec_wall_clock(self):
        device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        res = run_random_access(
            device, RandomAccessConfig(num_requests=64)
        )
        assert res.wall_seconds > 0
        assert res.requests_per_sec > 0
        assert res.requests_per_sec == pytest.approx(
            res.run.requests_sent / res.wall_seconds
        )
