"""Unit tests for the top-level HMCSim object (repro.core.simulator)."""

import pytest

from repro.core.config import DeviceConfig, SimConfig
from repro.core.errors import (
    HMCError,
    InitError,
    NoDataError,
    StallError,
    TopologyError,
)
from repro.core.simulator import HMCSim
from repro.packets.commands import CMD
from repro.packets.packet import build_memrequest
from repro.registers.regdefs import index_by_name, physical_index


def mk_sim(**kw):
    defaults = dict(num_devs=1, num_links=4, num_banks=8, capacity=2)
    defaults.update(kw)
    return HMCSim(**defaults)


class TestInit:
    def test_kwargs_construction(self):
        s = mk_sim(num_links=8, num_banks=16, capacity=8)
        assert len(s.devices) == 1
        assert s.devices[0].config.num_vaults == 32

    def test_config_object_construction(self):
        cfg = SimConfig(device=DeviceConfig(num_links=4), num_devs=3)
        s = HMCSim(cfg)
        assert len(s.devices) == 3

    def test_mixing_config_and_kwargs_rejected(self):
        with pytest.raises(InitError):
            HMCSim(SimConfig(), bank_busy_cycles=4)

    def test_engine_kwargs_forwarded(self):
        s = mk_sim(bank_busy_cycles=3, queue_timeout=50)
        assert s.config.bank_busy_cycles == 3
        assert s.config.queue_timeout == 50

    def test_devices_homogeneous_and_reset(self):
        s = mk_sim(num_devs=3)
        assert all(d.config == s.config.device for d in s.devices)
        assert all(d.pending_packets() == 0 for d in s.devices)

    def test_host_cub(self):
        assert mk_sim(num_devs=2).host_cub == 3


class TestTopologyConfig:
    def test_attach_host(self):
        s = mk_sim()
        s.attach_host(0, 0)
        assert s.host_links() == [(0, 0)]
        assert s.devices[0].is_root
        link = s.devices[0].links[0]
        assert link.src_cub == s.host_cub  # host side is the source

    def test_double_configuration_rejected(self):
        s = mk_sim()
        s.attach_host(0, 0)
        with pytest.raises(TopologyError):
            s.attach_host(0, 0)

    def test_loopback_rejected(self):
        """Paper V.B: loopbacks induce zombie responses; forbidden."""
        s = mk_sim(num_devs=2)
        with pytest.raises(TopologyError):
            s.connect(0, 0, 0, 1)

    def test_connect_pairs_links(self):
        s = mk_sim(num_devs=2)
        s.connect(0, 2, 1, 3)
        assert s.link_peer(0, 2) == (1, 3)
        assert s.link_peer(1, 3) == (0, 2)
        assert s.devices[0].links[2].is_chain_link

    def test_connect_rejects_configured_link(self):
        s = mk_sim(num_devs=2)
        s.attach_host(0, 0)
        with pytest.raises(TopologyError):
            s.connect(0, 0, 1, 0)

    def test_out_of_range_ids(self):
        s = mk_sim()
        with pytest.raises(TopologyError):
            s.attach_host(1, 0)
        with pytest.raises(TopologyError):
            s.attach_host(0, 9)

    def test_no_host_link_blocks_clock(self):
        """Paper V.B: at least one device must connect to a host."""
        s = mk_sim()
        with pytest.raises(TopologyError):
            s.clock()

    def test_link_config_host_style(self):
        s = mk_sim()
        s.link_config(0, 0, src_cub=s.host_cub, dst_cub=0, link_type="host")
        assert s.host_links() == [(0, 0)]

    def test_link_config_wrong_host_cub(self):
        s = mk_sim()
        with pytest.raises(TopologyError):
            s.link_config(0, 0, src_cub=0, dst_cub=0, link_type="host")

    def test_link_config_device_style(self):
        s = mk_sim(num_devs=2)
        s.link_config(0, 1, src_cub=0, dst_cub=1, link_type="device")
        assert s.link_peer(0, 1) is not None

    def test_link_config_bad_type(self):
        s = mk_sim()
        with pytest.raises(TopologyError):
            s.link_config(0, 0, 0, 0, link_type="wormhole")


class TestRouting:
    def test_next_hop_direct(self):
        s = mk_sim(num_devs=2)
        s.attach_host(0, 0)
        s.connect(0, 1, 1, 0)
        assert s.next_hop(0, 1) == (1, 1, 0)

    def test_next_hop_multi_hop_chain(self):
        s = mk_sim(num_devs=3)
        s.attach_host(0, 0)
        s.connect(0, 1, 1, 0)
        s.connect(1, 1, 2, 0)
        hop = s.next_hop(0, 2)
        assert hop == (1, 1, 0)  # first hop toward dev 2 goes via dev 1

    def test_next_hop_unknown_cube(self):
        s = mk_sim()
        s.attach_host(0, 0)
        assert s.next_hop(0, 5) is None
        assert s.next_hop(0, s.host_cub) is None

    def test_routes_invalidate_on_topology_change(self):
        s = mk_sim(num_devs=2)
        s.attach_host(0, 0)
        assert s.next_hop(0, 1) is None
        s.connect(0, 1, 1, 0)
        assert s.next_hop(0, 1) is not None


class TestSendRecv:
    def test_send_requires_host_link(self):
        s = mk_sim()
        with pytest.raises(TopologyError):
            s.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))

    def test_send_rejects_responses(self):
        s = mk_sim()
        s.attach_host(0, 0)
        from repro.packets.packet import Packet
        with pytest.raises(HMCError):
            s.send(Packet(cmd=CMD.WR_RS))

    def test_send_stall_on_full_queue(self):
        s = mk_sim(xbar_depth=2)
        s.attach_host(0, 0)
        s.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))
        s.send(build_memrequest(0, 0, 1, CMD.RD16, link=0))
        with pytest.raises(StallError):
            s.send(build_memrequest(0, 0, 2, CMD.RD16, link=0))
        assert s.send_stalls == 1
        assert s.try_send(build_memrequest(0, 0, 3, CMD.RD16, link=0)) is False

    def test_recv_empty_raises(self):
        s = mk_sim()
        s.attach_host(0, 0)
        with pytest.raises(NoDataError):
            s.recv()

    def test_recv_needs_both_or_neither(self):
        s = mk_sim()
        s.attach_host(0, 0)
        with pytest.raises(HMCError):
            s.recv(dev=0)

    def test_round_trip_and_delivery_metadata(self):
        s = mk_sim()
        s.attach_host(0, 2)
        s.send(build_memrequest(0, 0x40, 5, CMD.RD64, link=2))
        s.clock(10)
        rsp = s.recv()
        assert rsp.tag == 5
        assert rsp.delivered_from == (0, 2)
        assert rsp.completed_at == s.clock_value
        assert s.in_flight == 0

    def test_recv_all_drains(self):
        s = mk_sim()
        s.attach_host(0, 0)
        for i in range(4):
            s.send(build_memrequest(0, i * 64, i, CMD.RD16, link=0))
        s.clock(15)
        out = s.recv_all()
        assert sorted(r.tag for r in out) == [0, 1, 2, 3]

    def test_can_send(self):
        s = mk_sim(xbar_depth=1)
        s.attach_host(0, 0)
        assert s.can_send(0, 0)
        assert not s.can_send(0, 1)  # not a host link
        s.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))
        assert not s.can_send(0, 0)

    def test_posted_traffic_counts_in_flight(self):
        s = mk_sim()
        s.attach_host(0, 0)
        s.send(build_memrequest(0, 0, 0, CMD.P_WR16, payload=[1, 2], link=0))
        assert s.in_flight == 1  # never receives a response
        s.clock(10)
        assert s.pending_packets == 0  # consumed by the vault


class TestFlowControlIntegration:
    def test_token_exhaustion_stalls_send(self):
        s = mk_sim(link_token_flits=2)
        s.attach_host(0, 0)
        s.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))  # 1 FLIT
        s.send(build_memrequest(0, 64, 1, CMD.RD16, link=0))  # 1 FLIT
        with pytest.raises(StallError):
            s.send(build_memrequest(0, 128, 2, CMD.RD16, link=0))

    def test_tokens_return_on_recv(self):
        s = mk_sim(link_token_flits=1)
        s.attach_host(0, 0)
        s.send(build_memrequest(0, 0, 3, CMD.RD16, link=0))
        s.clock(10)
        assert not s.can_send(0, 0)
        s.recv()
        assert s.can_send(0, 0)

    def test_posted_requests_return_tokens_immediately(self):
        s = mk_sim(link_token_flits=2)
        s.attach_host(0, 0)
        s.send(build_memrequest(0, 0, 0, CMD.P_WR16, payload=[1, 2], link=0))
        assert s.can_send(0, 0, flits=2)


class TestLifecycle:
    def test_reset_preserves_topology(self):
        s = mk_sim()
        s.attach_host(0, 0)
        s.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))
        s.clock(3)
        s.reset()
        assert s.clock_value == 0
        assert s.packets_sent == 0
        assert s.pending_packets == 0
        assert s.host_links() == [(0, 0)]  # topology survives

    def test_free_blocks_further_use(self):
        s = mk_sim()
        s.attach_host(0, 0)
        s.free()
        with pytest.raises(HMCError):
            s.clock()
        with pytest.raises(HMCError):
            s.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))

    def test_stats_keys(self):
        s = mk_sim()
        s.attach_host(0, 0)
        st = s.stats()
        for key in ("cycles", "packets_sent", "bank_conflicts", "xbar_stalls"):
            assert key in st

    def test_jtag_out_of_band_does_not_touch_clock(self):
        """Paper V.D: JTAG exists outside the clock domains."""
        s = mk_sim()
        s.attach_host(0, 0)
        phys = physical_index(index_by_name("EDR0"))
        s.jtag_reg_write(0, phys, 0x55)
        assert s.jtag_reg_read(0, phys) == 0x55
        assert s.clock_value == 0
        assert s.pending_packets == 0
