"""Tests for trace replay (repro.workloads.trace_replay)."""

import io

import pytest

from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD, is_read, is_write
from repro.topology.builder import build_simple
from repro.trace.events import EventType, TraceEvent
from repro.trace.tracer import MemorySink
from repro.workloads.trace_replay import (
    parse_address_trace,
    record_requests,
    replay_address_trace,
    replay_events,
)

GB = 1 << 30


class TestParseAddressTrace:
    def test_basic_lines(self):
        text = "R 0x1000 64\nW 0x2000 128\nR 0x40\n"
        out = list(parse_address_trace(io.StringIO(text)))
        assert out == [("R", 0x1000, 64), ("W", 0x2000, 128), ("R", 0x40, 64)]

    def test_comments_and_blanks(self):
        text = "# header\n\nR 0x10 16  # inline\n"
        out = list(parse_address_trace(io.StringIO(text)))
        assert out == [("R", 0x10, 16)]

    def test_case_insensitive_op(self):
        out = list(parse_address_trace(io.StringIO("r 0x10\nw 0x20\n")))
        assert [o for o, _, _ in out] == ["R", "W"]

    @pytest.mark.parametrize("bad", ["X 0x10", "R", "R zzz", "R 0x10 big"])
    def test_malformed_lines_raise(self, bad):
        with pytest.raises(ValueError):
            list(parse_address_trace(io.StringIO(bad + "\n")))


class TestReplayAddressTrace:
    def test_commands_and_alignment(self):
        text = "R 0x1005 64\nW 0x2000 32\nR 0x40 7\n"
        reqs = list(replay_address_trace(io.StringIO(text), 2 * GB))
        assert reqs[0][0] is CMD.RD64
        assert reqs[0][1] == 0x1000  # aligned down to 64
        assert reqs[1][0] is CMD.WR32
        assert reqs[2][0] is CMD.RD16  # size 7 clamps up to 16

    def test_size_clamps_to_legal(self):
        text = "R 0x0 100\n"  # 100 -> 96
        reqs = list(replay_address_trace(io.StringIO(text), 2 * GB))
        assert reqs[0][0] is CMD.RD96

    def test_address_wraps_capacity(self):
        text = f"R {hex(3 * GB)} 64\n"
        reqs = list(replay_address_trace(io.StringIO(text), 2 * GB))
        assert reqs[0][1] == 1 * GB

    def test_write_payload_sized(self):
        reqs = list(replay_address_trace(io.StringIO("W 0x0 128\n"), 2 * GB))
        assert len(reqs[0][2]) == 16

    def test_end_to_end_replay(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        host = Host(sim)
        text = "\n".join(f"R {hex(i * 4096)} 64" for i in range(32))
        reqs = list(replay_address_trace(io.StringIO(text), 2 * GB))
        res = host.run(reqs)
        assert res.responses_received == 32
        assert res.errors_received == 0


class TestRecordRequests:
    def test_round_trip_through_text(self):
        reqs = [
            (CMD.RD64, 0x1000, None),
            (CMD.WR32, 0x2000, [1, 2, 3, 4]),
        ]
        lines = record_requests(reqs)
        assert lines == ["R 0x1000 64", "W 0x2000 32"]
        back = list(replay_address_trace(io.StringIO("\n".join(lines)), 2 * GB))
        assert back[0][0] is CMD.RD64 and back[0][1] == 0x1000
        assert back[1][0] is CMD.WR32 and back[1][1] == 0x2000


class TestReplayEvents:
    def test_replays_reads_and_writes_with_addresses(self):
        events = [
            TraceEvent(EventType.RQST_READ, cycle=0, vault=1, extra={"addr": 0x40}),
            TraceEvent(EventType.RQST_WRITE, cycle=1, vault=2, extra={"addr": 0x80}),
            TraceEvent(EventType.XBAR_RQST_STALL, cycle=2),  # skipped
        ]
        reqs = list(replay_events(events))
        assert len(reqs) == 2
        assert is_read(reqs[0][0]) and reqs[0][1] == 0x40
        assert is_write(reqs[1][0]) and reqs[1][1] == 0x80
        assert reqs[1][2] is not None

    def test_synthesises_addresses_when_missing(self):
        events = [
            TraceEvent(EventType.RQST_READ, cycle=0, vault=3, bank=2),
            TraceEvent(EventType.RQST_READ, cycle=1, vault=3, bank=2),
        ]
        reqs = list(replay_events(events))
        assert reqs[0][1] != reqs[1][1]  # distinct synthetic addresses

    def test_simulator_trace_round_trip(self):
        """Trace a run, replay the trace, get identical request counts
        and addresses — the §IV.E revisit-and-analyze workflow."""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        sink = sim.trace_to_memory(EventType.RQST_READ | EventType.RQST_WRITE)
        host = Host(sim)
        original = [(CMD.RD64, i * 4096, None) for i in range(16)]
        original += [(CMD.WR64, i * 8192, [i] * 8) for i in range(16)]
        host.run(original)
        replayed = list(replay_events(sink.events))
        assert len(replayed) == 32
        assert {a for _, a, _ in replayed} == {a for _, a, _ in original}
        # And the replay actually runs.
        sim2 = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        res = Host(sim2).run(replayed)
        assert res.responses_received == 32
