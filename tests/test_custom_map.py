"""Tests for bit-permutation address maps (repro.addressing.custom)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.addressing.address_map import AddressMap, AddressMapMode
from repro.addressing.custom import BitPermutationMap
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple

GB = 1 << 30

ARGS = dict(num_vaults=16, num_banks=8, block_size=64, capacity_bytes=1 * GB)


def contiguous(order=("offset", "vault", "bank", "dram")):
    return BitPermutationMap.from_field_order(order, **ARGS)


class TestValidation:
    def test_wrong_bit_count_rejected(self):
        good = contiguous()
        with pytest.raises(ValueError):
            BitPermutationMap(good.assignment[:-1], **ARGS)

    def test_double_assignment_rejected(self):
        a = list(contiguous().assignment)
        a[1] = a[0]
        with pytest.raises(ValueError):
            BitPermutationMap(a, **ARGS)

    def test_unknown_field_rejected(self):
        a = list(contiguous().assignment)
        a[0] = ("rank", 0)
        with pytest.raises(ValueError):
            BitPermutationMap(a, **ARGS)

    def test_bit_out_of_width_rejected(self):
        a = list(contiguous().assignment)
        a[0] = ("vault", 10)
        with pytest.raises(ValueError):
            BitPermutationMap(a, **ARGS)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            BitPermutationMap.from_field_order(
                ("offset", "vault", "bank", "dram"),
                num_vaults=12, num_banks=8, block_size=64, capacity_bytes=GB)


class TestEquivalenceWithAddressMap:
    def test_contiguous_layout_matches_vault_bank_mode(self):
        """from_field_order reproduces the classic map bit-for-bit."""
        classic = AddressMap(mode=AddressMapMode.VAULT_BANK, **ARGS)
        custom = contiguous(("offset", "vault", "bank", "dram"))
        for addr in (0, 63, 64, 0x12345, GB - 1):
            assert custom.decode(addr) == classic.decode(addr)

    def test_linear_layout_matches(self):
        classic = AddressMap(mode=AddressMapMode.LINEAR, **ARGS)
        custom = contiguous(("offset", "dram", "bank", "vault"))
        for addr in (0, 4096, GB // 2):
            assert custom.decode(addr) == classic.decode(addr)


class TestBijectivity:
    @given(addr=st.integers(0, GB - 1))
    @settings(max_examples=150)
    def test_decode_encode_identity_contiguous(self, addr):
        m = contiguous()
        d = m.decode(addr)
        assert m.encode(d.vault, d.bank, d.dram, d.offset) == addr

    @given(addr=st.integers(0, GB - 1))
    @settings(max_examples=150)
    def test_decode_encode_identity_split(self, addr):
        m = BitPermutationMap.vault_split(**ARGS)
        d = m.decode(addr)
        assert m.encode(d.vault, d.bank, d.dram, d.offset) == addr

    @given(
        vault=st.integers(0, 15),
        bank=st.integers(0, 7),
        offset=st.integers(0, 63),
        dram=st.integers(0, (1 << 17) - 1),  # 30-bit map: 17 dram bits
    )
    @settings(max_examples=100)
    def test_encode_decode_identity_split(self, vault, bank, offset, dram):
        m = BitPermutationMap.vault_split(**ARGS)
        assert m.widths["dram"] == 17
        addr = m.encode(vault, bank, dram, offset)
        assert 0 <= addr < GB
        d = m.decode(addr)
        assert (d.vault, d.bank, d.dram, d.offset) == (vault, bank, dram, offset)


class TestVaultSplitBehaviour:
    def test_small_strides_spread_vaults(self):
        m = BitPermutationMap.vault_split(**ARGS)
        vaults = {m.vault_of(i * 64) for i in range(4)}
        assert len(vaults) == 4  # low vault bits directly above offset

    def test_page_strides_also_spread_vaults(self):
        """The point of the split: huge strides that alias every low
        vault bit still toggle the high vault bits (bits 28..29 of the
        30-bit map), which the classic contiguous map never reaches."""
        classic = AddressMap(mode=AddressMapMode.VAULT_BANK, **ARGS)
        split = BitPermutationMap.vault_split(**ARGS)
        stride = 1 << 28
        classic_vaults = {classic.vault_of(i * stride % GB) for i in range(4)}
        split_vaults = {split.vault_of(i * stride % GB) for i in range(4)}
        assert len(classic_vaults) == 1
        assert len(split_vaults) == 4


class TestEngineIntegration:
    def test_swapped_map_runs_traffic(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=1))
        sim.devices[0].amap = BitPermutationMap.vault_split(
            num_vaults=16, num_banks=8, block_size=64, capacity_bytes=1 * GB)
        host = Host(sim)
        res = host.run([(CMD.WR64, i * 1024, [i] * 8) for i in range(64)]
                       + [(CMD.RD64, i * 1024, None) for i in range(64)])
        assert res.responses_received == 128
        assert res.errors_received == 0
