"""Unit tests for quad units and links (repro.core.quad / link)."""

import pytest

from repro.core.device import HMCDevice
from repro.core.config import DeviceConfig
from repro.core.link import EndpointType, Link
from repro.core.quad import (
    QuadUnit,
    closest_quad_of_link,
    is_local,
    quad_of_vault,
)


class TestQuadMapping:
    def test_four_vaults_per_quad(self):
        assert quad_of_vault(0) == 0
        assert quad_of_vault(3) == 0
        assert quad_of_vault(4) == 1
        assert quad_of_vault(31) == 7

    def test_link_quad_affinity(self):
        assert closest_quad_of_link(0) == 0
        assert closest_quad_of_link(7) == 7

    def test_is_local(self):
        assert is_local(link_id=0, vault_id=2)
        assert not is_local(link_id=0, vault_id=4)
        assert is_local(link_id=2, vault_id=11)

    def test_quad_unit_requires_exactly_four_vaults(self):
        dev = HMCDevice(0, DeviceConfig())
        with pytest.raises(ValueError):
            QuadUnit(0, 0, dev.vaults[:3])

    def test_quad_owns_vault(self):
        dev = HMCDevice(0, DeviceConfig())
        q1 = dev.quads[1]
        assert q1.owns_vault(5)
        assert not q1.owns_vault(0)
        assert q1.vault_ids() == [4, 5, 6, 7]


class TestLink:
    def test_unconfigured_by_default(self):
        l = Link(link_id=0, quad_id=0)
        assert not l.configured
        assert not l.is_host_link
        assert not l.is_chain_link

    def test_host_link(self):
        l = Link(0, 0, src_cub=2, dst_cub=0,
                 src_type=EndpointType.HOST, dst_type=EndpointType.DEVICE)
        assert l.configured
        assert l.is_host_link
        assert not l.is_chain_link

    def test_chain_link(self):
        l = Link(1, 1, src_cub=0, dst_cub=1,
                 src_type=EndpointType.DEVICE, dst_type=EndpointType.DEVICE)
        assert l.is_chain_link
        assert l.peer_cub == 1

    def test_raw_bandwidth(self):
        """Paper III.A: 16 lanes on 4-link devices; 10/12.5/15 Gbps."""
        l = Link(0, 0, rate_gbps=15.0, lanes=16)
        assert l.raw_bandwidth_gbps() == 240.0

    def test_traffic_counters(self):
        l = Link(0, 0)
        l.count_tx(5)
        l.count_tx(1)
        l.count_rx(9)
        assert (l.tx_packets, l.tx_flits) == (2, 6)
        assert (l.rx_packets, l.rx_flits) == (1, 9)


class TestDeviceLinkLaneWidths:
    def test_4link_device_has_16_lane_links(self):
        dev = HMCDevice(0, DeviceConfig(num_links=4))
        assert all(l.lanes == 16 for l in dev.links)

    def test_8link_device_has_8_lane_links(self):
        dev = HMCDevice(0, DeviceConfig(num_links=8))
        assert all(l.lanes == 8 for l in dev.links)
