"""In-band link retry, degradation ladder, reroute and watchdog tests.

Covers the engine-integrated fault path (repro.faults.inband): every
link traversal runs through a :class:`InbandLinkState` gate, retries
consume real simulated cycles, links degrade FULL -> HALF -> FAILED,
chained topologies reroute around dead links, and the no-progress
watchdog converts flow-control livelock into a typed abort — under
both schedulers, bit-identically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import checkpoint
from repro.core.config import DeviceConfig, SimConfig
from repro.core.errors import (
    E_DEADLOCK,
    E_LINKFAIL,
    HMCError,
    LinkDeadError,
    NoDataError,
    StallError,
    TopologyError,
    WatchdogError,
)
from repro.core.simulator import HMCSim
from repro.faults import (
    FaultKind,
    InbandLinkState,
    LinkFaultModel,
    LinkHealth,
    LinkRetryExhausted,
    ScheduledInjector,
)
from repro.packets.commands import CMD
from repro.packets.flow import FlowControlError, LinkTokens, RetryPointerState
from repro.packets.packet import ErrStat, build_memrequest
from repro.trace.events import EventType


DEVICE = DeviceConfig(num_links=4, num_banks=8, capacity=2)


def _chain2(scheduler="naive", **kw):
    """Host -> dev0 -> dev1 two-cube chain."""
    sim = HMCSim(SimConfig(device=DEVICE, num_devs=2, scheduler=scheduler, **kw))
    sim.attach_host(0, 0)
    sim.connect(0, 2, 1, 1)
    return sim


class TestExportsAndErrno:
    """Satellite: package-root exports and errno consistency."""

    def test_faults_package_exports(self):
        import repro.faults as faults

        for name in (
            "LinkRetryExhausted", "FaultKind", "ScheduledInjector",
            "InbandLinkState", "LinkHealth", "LinkFaultModel",
        ):
            assert hasattr(faults, name), name
            assert name in faults.__all__

    def test_error_errnos(self):
        assert LinkDeadError("x").errno == E_LINKFAIL
        assert WatchdogError("x").errno == E_DEADLOCK
        assert LinkRetryExhausted("x").errno == E_LINKFAIL
        assert issubclass(LinkRetryExhausted, HMCError)
        assert issubclass(LinkRetryExhausted, RuntimeError)

    def test_errors_carry_structured_report(self):
        rep = {"cycle": 7}
        assert LinkDeadError("x", report=rep).report == rep
        assert WatchdogError("x").report == {}

    def test_api_translates_linkfail_errno(self):
        from repro.core import api

        hmc = api.hmcsim_t()
        hmc._sim = _chain2()
        state = hmc.sim.attach_link_fault(0, 0, LinkFaultModel(seed=1))
        state.fail()
        hmc.sim._note_link_failure(state)
        ret, _, _, words = api.hmcsim_build_memrequest(
            hmc, 0, 0x40, 1, "RD64", 0)
        assert ret == 0
        assert api.hmcsim_send(hmc, words) == E_LINKFAIL

    def test_api_translates_watchdog_errno(self):
        from repro.core import api

        hmc = api.hmcsim_t()
        hmc._sim = _chain2(link_token_flits=32, watchdog_cycles=40)
        state = hmc.sim.attach_link_fault(0, 2, LinkFaultModel(seed=1))
        for tag in range(1, 4):
            hmc.sim.send(build_memrequest(1, 0x40 * tag, tag, CMD.RD64, link=0))
        hmc.sim.clock(4)
        state.fail()
        hmc.sim._note_link_failure(state)
        ret = 0
        for _ in range(500):
            ret = api.hmcsim_clock(hmc)
            if ret != 0:
                break
        assert ret == E_DEADLOCK


class TestDegradationLadder:
    def test_full_half_failed_and_registers(self):
        sim = _chain2(link_max_retries=2, link_retry_delay=3)
        state = sim.attach_link_fault(0, 2, LinkFaultModel(drop_rate=1.0, seed=5))
        sink = sim.trace_to_memory()
        for tag in range(1, 5):
            sim.send(build_memrequest(1, 0x40 * tag, tag, CMD.RD64, link=0))
        sim.run(200)
        rsps = sim.recv_all()
        # Ladder: FULL -(3 fails)-> HALF -(3 more)-> FAILED.
        assert state.health is LinkHealth.FAILED
        assert state.degradations == 2
        assert sim.link_failures == 1
        # With no surviving path, requests come back as routing errors.
        assert len(rsps) == 4
        assert {r.errstat for r in rsps} == {ErrStat.UNROUTABLE}
        # Both endpoints mirror the packed health/counter register.
        for dev, link in ((0, 2), (1, 1)):
            status = InbandLinkState.unpack_status(
                sim.devices[dev].regs.peek(f"LRS{link}"))
            assert status["health"] == "FAILED"
            assert status["degradations"] == 2
            assert status["drops"] == state.stats.drops > 0
        types = {e.type for e in sink.events}
        assert EventType.LINK_RETRY in types
        assert EventType.LINK_DEGRADED in types
        assert EventType.LINK_FAILED in types

    def test_half_width_doubles_serialization(self):
        state = InbandLinkState([(0, 0)], LinkFaultModel(seed=1))
        state.health = LinkHealth.HALF
        pkt = build_memrequest(0, 0x40, 1, CMD.WR64,
                               payload=[0] * 8, link=0)

        class _T:
            def event(self, *a, **k):
                pass

        assert state.try_transmit("host", pkt, 100, _T()) == "ok"
        # num_flits extra cycles of busy: doubled FLIT cost.
        assert not state.ready_for("host", 100 + pkt.num_flits - 1)
        assert state.ready_for("host", 100 + pkt.num_flits)

    def test_write_to_clear_rebases_counters(self):
        sim = _chain2(link_max_retries=50, link_retry_delay=2)
        state = sim.attach_link_fault(0, 2, LinkFaultModel(drop_rate=0.5, seed=9))
        for tag in range(1, 9):
            sim.send(build_memrequest(1, 0x40 * tag, tag, CMD.RD64, link=0))
        sim.run(300)
        before = InbandLinkState.unpack_status(sim.devices[0].regs.peek("LRS2"))
        assert before["drops"] > 0
        sim.devices[0].regs.write("LRS2", 0)  # host strobe: clear
        sim.run(2)
        after = InbandLinkState.unpack_status(sim.devices[0].regs.peek("LRS2"))
        assert after["drops"] == 0
        # The peer endpoint keeps its own (uncleared) baseline.
        peer = InbandLinkState.unpack_status(sim.devices[1].regs.peek("LRS1"))
        assert peer["drops"] == before["drops"]

    def test_link_health_surface(self):
        sim = _chain2()
        assert sim.devices[0].links[2].health == "FULL"
        state = sim.attach_link_fault(0, 2, LinkFaultModel(seed=1))
        link = sim.devices[0].links[2]
        assert link.effective_lanes() == link.lanes
        state.health = LinkHealth.HALF
        assert link.effective_lanes() == link.lanes // 2
        state.health = LinkHealth.FAILED
        assert link.effective_lanes() == 0
        assert link.effective_bandwidth_gbps() == 0.0

    def test_attach_validation(self):
        sim = _chain2()
        with pytest.raises(TopologyError):
            sim.attach_link_fault(0, 3, LinkFaultModel(seed=1))  # unconfigured
        sim.attach_link_fault(0, 2, LinkFaultModel(seed=1))
        with pytest.raises(TopologyError):
            sim.attach_link_fault(1, 1, LinkFaultModel(seed=1))  # same link


class TestRerouteAroundDeadLink:
    def _ring3(self, **kw):
        """Host on dev0; ring 0-1-2-0 gives two disjoint paths to dev1."""
        sim = HMCSim(SimConfig(device=DEVICE, num_devs=3, **kw))
        sim.attach_host(0, 0)
        sim.connect(0, 1, 1, 1)
        sim.connect(1, 2, 2, 2)
        sim.connect(2, 3, 0, 3)
        return sim

    def test_traffic_reroutes_after_failure(self):
        sim = self._ring3(link_max_retries=1, link_retry_delay=2)
        state = sim.attach_link_fault(0, 1, LinkFaultModel(drop_rate=1.0, seed=3))
        for tag in range(1, 7):
            sim.send(build_memrequest(1, 0x80 * tag, tag, CMD.RD64, link=0))
        sim.run(400)
        rsps = sim.recv_all()
        assert state.health is LinkHealth.FAILED
        # Every request completed cleanly via the surviving 0->2->1 path.
        assert sorted(r.tag for r in rsps) == list(range(1, 7))
        assert all(r.errstat is ErrStat.OK for r in rsps)
        assert sum(x.routed_remote for x in sim.devices[2].xbars) > 0
        # next_hop now avoids the dead link.
        hop = sim.next_hop(0, 1)
        assert hop is not None and hop[0] == 3

    def test_route_analysis_excludes_failed(self):
        from repro.topology.route import (
            link_health_report,
            path_between,
            surviving_partition,
        )

        sim = self._ring3()
        state = sim.attach_link_fault(0, 1, LinkFaultModel(seed=3))
        assert path_between(sim, 0, 1) == [0, 1]
        state.fail()
        sim._note_link_failure(state)
        assert path_between(sim, 0, 1, include_failed=False) == [0, 2, 1]
        assert path_between(sim, 0, 1) == [0, 1]  # physical graph intact
        assert surviving_partition(sim) == [[0, 1, 2]]
        rep = link_health_report(sim)
        assert rep["dev0.link1"]["health"] == "FAILED"
        assert rep["dev0.link1"]["fabric_partitions"] == 1

    def test_no_surviving_path_raises_on_host_link(self):
        sim = _chain2()
        state = sim.attach_link_fault(0, 0, LinkFaultModel(seed=1))
        state.fail()
        sim._note_link_failure(state)
        with pytest.raises(LinkDeadError) as exc:
            sim.send(build_memrequest(0, 0x40, 1, CMD.RD64, link=0))
        assert exc.value.errno == E_LINKFAIL
        assert exc.value.report["link_failures"] == 1
        with pytest.raises(NoDataError):
            sim.recv(dev=0, link=0)


class TestWatchdog:
    """A dropped response (and its piggybacked TRET tokens) on a dead
    chain link leaks flow-control credits: the host can never send
    again and no response can ever arrive.  The watchdog must convert
    that livelock into a typed abort — at the same cycle under both
    schedulers — instead of hanging."""

    def _deadlock(self, scheduler):
        sim = _chain2(scheduler=scheduler, link_token_flits=32,
                      watchdog_cycles=50)
        state = sim.attach_link_fault(0, 2, LinkFaultModel(seed=5))
        for tag in range(1, 5):
            sim.send(build_memrequest(1, 0x40 * tag, tag, CMD.RD64, link=0))
        # Clock until responses are queued inside dev1, then kill the
        # chain link they must cross.
        for _ in range(60):
            sim.clock()
            occ = sum(len(x.rsp._q) for x in sim.devices[1].xbars) + \
                sum(len(v.rsp._q) for v in sim.devices[1].vaults)
            if occ:
                break
        state.fail()
        sim._note_link_failure(state)
        with pytest.raises(WatchdogError) as exc:
            sim.run(3000)
        return sim, exc.value

    @pytest.mark.parametrize("scheduler", ["naive", "active"])
    def test_fires_typed_abort(self, scheduler):
        sim, err = self._deadlock(scheduler)
        assert err.errno == E_DEADLOCK
        assert sim.watchdog_trips == 1
        rep = err.report
        assert rep["watchdog_cycles"] == 50
        assert rep["in_flight"] > 0  # leaked tokens, never returned
        assert rep["link_failures"] == 1
        assert sim.dropped_responses > 0
        assert sim.stats()["watchdog_trips"] == 1

    def test_same_abort_cycle_both_schedulers(self):
        naive, _ = self._deadlock("naive")
        active, _ = self._deadlock("active")
        assert naive.clock_value == active.clock_value

    def test_quiet_idle_does_not_trip(self):
        sim = _chain2(watchdog_cycles=20)
        sim.attach_link_fault(0, 2, LinkFaultModel(seed=5))
        sim.send(build_memrequest(1, 0x40, 1, CMD.RD64, link=0))
        sim.run(500)  # long idle tail after completion: no work => no trip
        assert sim.watchdog_trips == 0
        assert len(sim.recv_all()) == 1


class TestCheckpointRoundTrip:
    """Satellite: snapshot/restore must round-trip retry state and the
    fault-model RNG bit-identically."""

    def _fingerprint(self, sim):
        return {
            "cycle": sim.clock_value,
            "stats": sim.stats(),
            "regs": [d.regs.snapshot() for d in sim.devices],
            "link": [s.stats_dict() for s in sim._link_fault_states],
        }

    @pytest.mark.parametrize("scheduler", ["naive", "active"])
    def test_mid_retry_snapshot_continues_identically(self, scheduler):
        sim = _chain2(scheduler=scheduler, link_ber=2e-4,
                      link_drop_rate=0.01, link_seed=3)
        tags = iter(range(1, 512))
        for _ in range(8):
            sim.send(build_memrequest(1, 0x40 * next(tags), next(tags),
                                      CMD.RD64, link=0))
        sim.run(40)  # stop mid-flight, likely mid-replay-window
        blob = checkpoint.snapshot(sim)
        twin = checkpoint.restore(blob)

        for s in (sim, twin):
            s.run(300)
            s.recv_all()
            s.run(50)
        assert self._fingerprint(sim) == self._fingerprint(twin)
        # The run actually exercised the fault path.
        faults = sim.stats()["link_faults"]
        assert any(v["transmissions"] > 0 for v in faults.values())

    def test_snapshot_preserves_fault_rng_stream(self):
        model = LinkFaultModel(ber=1e-3, seed=11)
        state = InbandLinkState([(0, 0)], model)
        sim = _chain2()
        sim._link_faults[(0, 0)] = state
        sim._link_fault_states.append(state)
        blob = checkpoint.snapshot(sim)
        twin = checkpoint.restore(blob)
        words = [0xDEADBEEF] * 12
        a = [sim._link_fault_states[0].model.transmit(words)[0]
             for _ in range(200)]
        b = [twin._link_fault_states[0].model.transmit(words)[0]
             for _ in range(200)]
        assert a == b


class TestFlowProperties:
    """Satellite property tests: token accounting can never over-return,
    and retry-pointer acks never free more than was stamped."""

    @given(st.lists(st.tuples(st.booleans(), st.integers(1, 12)),
                    max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_tokens_conserve_and_reject_over_return(self, ops):
        tok = LinkTokens(capacity=32)
        in_flight = 0
        for is_send, flits in ops:
            if is_send:
                if tok.can_send(flits):
                    tok.consume(flits)
                    in_flight += flits
                else:
                    with pytest.raises(FlowControlError):
                        tok.consume(flits)
            else:
                if flits <= in_flight:
                    tok.restore(flits)
                    in_flight -= flits
                else:
                    # A TRET returning more than is outstanding is a
                    # protocol violation: rejected, state unchanged.
                    with pytest.raises(FlowControlError):
                        tok.restore(flits)
            assert tok.available + in_flight == tok.capacity
            assert 0 <= tok.available <= tok.capacity

    @given(st.integers(1, 64), st.integers(0, 80))
    @settings(max_examples=100, deadline=None)
    def test_retry_pointers_never_free_excess(self, slots, n_stamps):
        from repro.packets.packet import Packet

        rps = RetryPointerState(buffer_slots=slots)
        stamped = []
        for _ in range(n_stamps):
            pkt = Packet(cmd=CMD.RD64, cub=0, addr=0, tag=1)
            if rps.outstanding >= slots:
                with pytest.raises(FlowControlError):
                    rps.stamp(pkt)
                break
            stamped.append(rps.stamp(pkt))
        total = rps.outstanding
        freed = rps.acknowledge(stamped[len(stamped) // 2]) if stamped else 0
        assert freed + rps.outstanding == total
        # Acking an unknown pointer drains at most what was outstanding.
        freed2 = rps.acknowledge(10_000)
        assert freed2 == total - freed
        assert rps.outstanding == 0

    def test_scheduled_injector_importable_and_deterministic(self):
        inj = ScheduledInjector({1, 3})
        words = [1, 2, 3]
        results = [inj.corrupt(words) for _ in range(4)]
        assert results[0] == words and results[2] == words
        assert results[1] != words and results[3] != words
        assert inj.corrupted_transmissions == 2
        assert FaultKind.CORRUPT.value == "corrupt"


class TestStatSurfaces:
    def test_statdump_includes_link_report(self):
        from repro.analysis.statdump import dump_stats

        sim = _chain2(link_ber=1e-4, link_seed=2, watchdog_cycles=1000)
        for tag in range(1, 5):
            sim.send(build_memrequest(1, 0x40 * tag, tag, CMD.RD64, link=0))
        sim.run(200)
        tree = dump_stats(sim)
        assert tree["config"]["link_ber"] == 1e-4
        assert tree["config"]["watchdog_cycles"] == 1000
        assert "link_report" in tree
        links = tree["link_report"]["links"]
        assert any(l["transmissions"] > 0 for l in links.values())
        # Per-link health rides the device link stats when state exists.
        assert tree["devices"][0]["links"][2]["health"] == "FULL"
        assert "health" not in tree["devices"][0]["links"][3]

    def test_statdump_baseline_unchanged_without_faults(self):
        from repro.analysis.statdump import dump_stats

        sim = _chain2()
        sim.run(5)
        tree = dump_stats(sim)
        assert "link_report" not in tree
        assert "link_ber" not in tree["config"]
        assert "link_faults" not in tree["summary"]

    def test_cli_inband_faults_smoke(self, capsys):
        from repro.cli import main

        rc = main(["faults", "--link-ber", "5e-5", "--link-drop-rate",
                   "0.001", "--link-seed", "4", "--requests", "48",
                   "--watchdog-cycles", "20000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "in-band link fault summary" in out
        assert "health=FULL" in out
