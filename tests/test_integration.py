"""Integration tests: end-to-end flows across modules."""

import pytest

from repro import (
    CMD,
    ErrStat,
    EventType,
    HMCSim,
    build_memrequest,
)
from repro.core.config import DeviceConfig, PAPER_CONFIGS
from repro.host.host import Host, LinkPolicy
from repro.topology.builder import build_ring, build_simple, build_torus_2d
from repro.trace.stats import TraceStats
from repro.trace.tracer import StatsSink
from repro.workloads.random_access import RandomAccessConfig, run_random_access
from repro.workloads.stream import stream_requests


class TestSingleDeviceEndToEnd:
    @pytest.mark.parametrize("label", list(PAPER_CONFIGS))
    def test_write_read_round_trip_all_paper_configs(self, label):
        cfg = PAPER_CONFIGS[label]
        sim = HMCSim(
            num_devs=1, num_links=cfg.num_links, num_banks=cfg.num_banks,
            capacity=cfg.capacity, queue_depth=cfg.queue_depth,
            xbar_depth=cfg.xbar_depth,
        )
        sim.attach_host(0, 0)
        data = [0xDEAD + i for i in range(8)]
        addr = cfg.capacity_bytes // 2  # deep in the address space
        sim.send(build_memrequest(0, addr, 1, CMD.WR64, payload=data, link=0))
        sim.clock(20)
        assert sim.recv().cmd is CMD.WR_RS
        sim.send(build_memrequest(0, addr, 2, CMD.RD64, link=0))
        sim.clock(20)
        rsp = sim.recv()
        assert list(rsp.payload) == data

    def test_every_request_size_round_trips(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        tag = 0
        for size in (16, 32, 48, 64, 80, 96, 112, 128):
            from repro.packets.commands import READ_CMD_FOR_BYTES, WRITE_CMD_FOR_BYTES
            data = list(range(size // 8))
            sim.send(build_memrequest(0, 0x10000, tag, WRITE_CMD_FOR_BYTES[size],
                                      payload=data, link=0))
            sim.clock(20)
            assert sim.recv().tag == tag
            tag += 1
            sim.send(build_memrequest(0, 0x10000, tag, READ_CMD_FOR_BYTES[size], link=0))
            sim.clock(20)
            rsp = sim.recv()
            assert list(rsp.payload) == data
            tag += 1

    def test_atomic_read_modify_write_end_to_end(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        sim.send(build_memrequest(0, 0x80, 1, CMD.WR16, payload=[100, 200], link=0))
        sim.clock(10)
        sim.recv()
        sim.send(build_memrequest(0, 0x80, 2, CMD.ADD16, payload=[1, 2], link=0))
        sim.clock(10)
        rsp = sim.recv()
        assert list(rsp.payload) == [100, 200]  # old value
        sim.send(build_memrequest(0, 0x80, 3, CMD.RD16, link=0))
        sim.clock(10)
        assert list(sim.recv().payload) == [101, 202]

    def test_mode_register_access_in_band(self):
        """Paper V.D: MODE packets route like memory traffic."""
        from repro.registers.regdefs import index_by_name, physical_index
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        reg = physical_index(index_by_name("EDR1"))
        sim.send(build_memrequest(0, reg, 1, CMD.MD_WR, payload=[0x77, 0], link=0))
        sim.clock(10)
        assert sim.recv().cmd is CMD.MD_WR_RS
        sim.send(build_memrequest(0, reg, 2, CMD.MD_RD, link=0))
        sim.clock(10)
        rsp = sim.recv()
        assert rsp.cmd is CMD.MD_RD_RS
        assert rsp.payload[0] == 0x77
        # And the JTAG view agrees (same register file, side band).
        assert sim.jtag_reg_read(0, reg) == 0x77


class TestChainedTopologies:
    def test_ring_reaches_every_device(self):
        sim = build_ring(HMCSim(num_devs=4, num_links=4, num_banks=8, capacity=2))
        for cub in range(4):
            sim.send(build_memrequest(cub, 0x40 * (cub + 1), cub, CMD.WR16,
                                      payload=[cub, cub], link=0))
        sim.clock(40)
        got = {r.tag for r in sim.recv_all()}
        assert got == {0, 1, 2, 3}
        # Data landed on the right devices.
        for cub in range(4):
            sim.send(build_memrequest(cub, 0x40 * (cub + 1), 10 + cub, CMD.RD16, link=0))
        sim.clock(40)
        for rsp in sim.recv_all():
            cub = rsp.tag - 10
            assert list(rsp.payload) == [cub, cub]

    def test_torus_traffic(self):
        sim = build_torus_2d(
            HMCSim(num_devs=4, num_links=4, num_banks=8, capacity=2), shape=(2, 2))
        host = Host(sim)
        reqs = [(CMD.RD64, i * 64, None) for i in range(64)]
        res = host.run(reqs, cub=3)  # farthest device
        assert res.responses_received == 64
        assert res.errors_received == 0

    def test_chain_hop_latency_grows_with_distance(self):
        from repro.topology.builder import build_chain
        sim = build_chain(HMCSim(num_devs=4, num_links=4, num_banks=8, capacity=2))
        host = Host(sim)

        def mean_lat(cub):
            res = host.run([(CMD.RD64, i * 64, None) for i in range(16)], cub=cub)
            return res.mean_latency

        near, far = mean_lat(0), mean_lat(3)
        assert far > near


class TestWorkloadIntegration:
    def test_random_access_conservation(self):
        """Every non-posted request eventually yields exactly one
        response: sent == received, no drops, no errors."""
        res = run_random_access(
            DeviceConfig(num_links=4, num_banks=8, capacity=2),
            RandomAccessConfig(num_requests=1024),
        )
        assert res.run.requests_sent == 1024
        assert res.run.responses_received == 1024
        assert res.run.errors_received == 0
        assert res.sim_stats["dropped_responses"] == 0

    def test_random_access_with_tracing_matches_counters(self):
        res = run_random_access(
            DeviceConfig(num_links=4, num_banks=8, capacity=2),
            RandomAccessConfig(num_requests=512),
            trace=True,
        )
        stats = res.trace_stats
        fig = stats.figure5_series()
        reads = fig["read_requests"].total
        writes = fig["write_requests"].total
        assert reads + writes == 512
        # Trace totals agree with the simulator's own counters.
        assert res.sim_stats["requests_processed"] == 512

    def test_stream_workload_avoids_conflicts(self):
        """Paper III.B: the default map makes sequential streams conflict-
        free; compare against the random workload's conflict rate."""
        dev = DeviceConfig(num_links=4, num_banks=8, capacity=2)

        def conflicts(requests):
            sim = build_simple(HMCSim(
                num_devs=1, num_links=4, num_banks=8, capacity=2))
            st = TraceStats(num_vaults=16)
            sim.set_trace_mask(EventType.BANK_CONFLICT)
            sim.add_trace_sink(StatsSink(st))
            Host(sim).run(requests)
            return st.totals.get(EventType.BANK_CONFLICT, 0)

        seq = conflicts(stream_requests(dev.capacity_bytes, 512))
        from repro.workloads.random_access import random_access_requests
        rnd = conflicts(random_access_requests(
            dev.capacity_bytes, RandomAccessConfig(num_requests=512)))
        assert seq < rnd

    def test_glibc_rand_harness_runs(self):
        res = run_random_access(
            DeviceConfig(num_links=4, num_banks=8, capacity=2),
            RandomAccessConfig(num_requests=256, use_glibc_rand=True),
        )
        assert res.run.responses_received == 256


class TestErrorPaths:
    def test_unroutable_cube_error_response_end_to_end(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        sim.send(build_memrequest(6, 0x40, 9, CMD.RD64, link=0))
        sim.clock(10)
        rsp = sim.recv()
        assert rsp.cmd is CMD.ERROR
        assert rsp.errstat is ErrStat.UNROUTABLE
        assert rsp.tag == 9

    def test_invalid_register_error_response_end_to_end(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        sim.send(build_memrequest(0, 0xBAD, 3, CMD.MD_RD, link=0))
        sim.clock(10)
        rsp = sim.recv()
        assert rsp.cmd is CMD.ERROR
        assert rsp.errstat is ErrStat.INVALID_ADDRESS

    def test_host_survives_error_mixed_with_good_traffic(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        host = Host(sim)
        reqs = [(CMD.RD64, i * 64, None) for i in range(20)]
        reqs.insert(10, (CMD.RD64, 0x40, None))
        host.run(reqs)
        # Now a bad cube in the middle of good traffic:
        host.send_request(CMD.RD64, 0x40, cub=5)
        for _ in range(10):
            sim.clock()
        host.drain_responses()
        assert host.errors == 1
        assert host.outstanding == 0
