"""Shared test harness: per-test timeout enforcement.

A hung test (an accidental unbounded drive loop, a deadlocked pump)
should fail loudly, not wedge the whole suite.  CI installs
``pytest-timeout``; when that plugin is present this conftest defers to
it entirely.  Locally — where the plugin may not be installed — a
SIGALRM fallback enforces the same bound on POSIX platforms, and is a
clean no-op anywhere SIGALRM is unavailable (Windows, non-main-thread
runners).

Override per test with ``@pytest.mark.timeout(seconds)`` — the same
marker pytest-timeout uses, so tests stay portable between both
enforcement paths.
"""

from __future__ import annotations

import signal
import threading

import pytest

#: Default per-test bound in seconds.  Generous: the slowest legitimate
#: tests (full-campaign service runs) finish well under this.
DEFAULT_TIMEOUT = 120


def _plugin_active(config) -> bool:
    return config.pluginmanager.hasplugin("timeout")


def pytest_configure(config):
    # Register the marker so `--strict-markers` runs accept it even
    # when pytest-timeout is absent.
    if not _plugin_active(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test timeout (SIGALRM fallback)",
        )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker and marker.args:
        return float(marker.args[0])
    return float(DEFAULT_TIMEOUT)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if (
        _plugin_active(item.config)
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return
    seconds = _timeout_for(item)
    if seconds <= 0:
        yield
        return

    def _alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:.0f}s per-test timeout"
        )

    previous = signal.signal(signal.SIGALRM, _alarm)
    # ITIMER_REAL supports fractional seconds, unlike alarm().
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)
