"""Tests for the host driver and tag pools (repro.host)."""

import pytest

from repro.core.errors import TopologyError
from repro.core.simulator import HMCSim
from repro.host.host import Host, LinkPolicy
from repro.host.tagpool import TagPool
from repro.packets.commands import CMD
from repro.topology.builder import build_simple


class TestTagPool:
    def test_allocate_release_cycle(self):
        p = TagPool(size=4)
        tags = [p.allocate(context=i) for i in range(4)]
        assert tags == [0, 1, 2, 3]
        assert p.exhausted
        assert p.allocate() is None
        assert p.release(2) == 2
        assert p.available == 1
        assert p.allocate() == 2  # recycled

    def test_context_binding(self):
        p = TagPool()
        t = p.allocate(context={"addr": 64})
        assert p.context(t) == {"addr": 64}

    def test_double_release_raises(self):
        p = TagPool(size=2)
        t = p.allocate()
        p.release(t)
        with pytest.raises(KeyError):
            p.release(t)

    def test_size_bounds(self):
        with pytest.raises(ValueError):
            TagPool(size=0)
        with pytest.raises(ValueError):
            TagPool(size=513)

    def test_counters_and_reset(self):
        p = TagPool(size=8)
        t = p.allocate()
        p.release(t)
        assert (p.allocated_total, p.released_total) == (1, 1)
        p.reset()
        assert p.available == 8
        assert p.allocated_total == 0

    def test_outstanding_tags(self):
        p = TagPool(size=8)
        a, b = p.allocate(), p.allocate()
        assert p.outstanding_tags() == sorted([a, b])


def mk_host(policy=LinkPolicy.ROUND_ROBIN, **kw):
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
    return sim, Host(sim, policy=policy, **kw)


class TestHostBasics:
    def test_requires_host_links(self):
        sim = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)
        with pytest.raises(TopologyError):
            Host(sim)

    def test_per_link_tag_pools(self):
        sim, host = mk_host(max_outstanding=16)
        assert set(host.tag_pools) == set(sim.host_links())
        assert all(p.size == 16 for p in host.tag_pools.values())

    def test_round_robin_rotates_links(self):
        sim, host = mk_host()
        links = []
        for i in range(8):
            host.send_request(CMD.RD16, addr=i * 64)
            # The most recent pending request records its link.
            pool = [p for p in host.tag_pools.values() if p.outstanding]
            links = [ctx.link for p in host.tag_pools.values()
                     for ctx in [p.context(t) for t in p.outstanding_tags()]]
        assert sorted(set(links)) == [0, 1, 2, 3]

    def test_posted_requests_use_no_tag(self):
        sim, host = mk_host()
        tag = host.send_request(CMD.P_WR16, addr=0, payload=[1, 2])
        assert tag == 0
        assert host.outstanding == 0
        assert host.sent == 1

    def test_tag_exhaustion_returns_none(self):
        sim, host = mk_host(max_outstanding=1)
        for link in range(4):
            assert host.send_request(CMD.RD16, addr=0) is not None
        assert host.send_request(CMD.RD16, addr=0) is None  # all pools full

    def test_send_stall_releases_tag(self):
        sim = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2,
                     xbar_depth=1)
        build_simple(sim, host_links=1)
        host = Host(sim)
        assert host.send_request(CMD.RD16, addr=0) is not None
        assert host.send_request(CMD.RD16, addr=64) is None  # queue full
        assert host.outstanding == 1  # the stalled tag was recycled


class TestHostResponses:
    def test_drain_correlates_and_records_latency(self):
        sim, host = mk_host()
        host.send_request(CMD.RD64, addr=0x40)
        for _ in range(10):
            sim.clock()
        rsps = host.drain_responses()
        assert len(rsps) == 1
        assert host.received == 1
        assert host.outstanding == 0
        assert len(host.latencies) == 1
        assert host.latencies[0] > 0

    def test_error_responses_tallied(self):
        sim, host = mk_host()
        host.send_request(CMD.RD64, addr=0x40, cub=5)  # unroutable cube
        for _ in range(10):
            sim.clock()
        host.drain_responses()
        assert host.errors == 1
        assert len(host.error_stats) == 1


class TestRunLoop:
    def test_run_completes_stream(self):
        sim, host = mk_host()
        reqs = [(CMD.RD64, i * 64, None) for i in range(50)]
        result = host.run(reqs)
        assert result.requests_sent == 50
        assert result.responses_received == 50
        assert result.errors_received == 0
        assert result.cycles > 0
        assert len(result.latencies) == 50
        assert result.throughput > 0
        assert result.mean_latency > 0
        assert sim.pending_packets == 0

    def test_run_mixed_writes(self):
        sim, host = mk_host()
        reqs = [(CMD.WR64, i * 64, [i] * 8) for i in range(20)]
        result = host.run(reqs)
        assert result.responses_received == 20

    def test_run_respects_max_cycles(self):
        sim, host = mk_host()
        reqs = ((CMD.RD64, (i % 1000) * 64, None) for i in range(10_000_000))
        result = host.run(reqs, max_cycles=20)
        assert result.cycles <= 21

    def test_run_without_drain_leaves_outstanding(self):
        sim, host = mk_host()
        reqs = [(CMD.RD64, i * 64, None) for i in range(10)]
        host.run(reqs, drain=False)
        # Without drain the loop exits once the stream is exhausted,
        # possibly before every response returned; nothing hangs.
        assert host.sent == 10


class TestPolicies:
    def test_random_policy_spreads_links(self):
        sim, host = mk_host(policy=LinkPolicy.RANDOM)
        for i in range(32):
            host.send_request(CMD.RD16, addr=i * 64)
        used = {ctx.link for p in host.tag_pools.values()
                for ctx in (p.context(t) for t in p.outstanding_tags())}
        assert len(used) >= 2

    def test_locality_policy_picks_colocated_link(self):
        sim, host = mk_host(policy=LinkPolicy.LOCALITY)
        amap = sim.devices[0].amap
        # Address in vault 9 -> quad 2 -> link 2.
        addr = amap.encode(9, 0, 0, 0)
        host.send_request(CMD.RD16, addr=addr)
        ctx = next(ctx for p in host.tag_pools.values()
                   for ctx in (p.context(t) for t in p.outstanding_tags()))
        assert ctx.link == 2

    def test_locality_policy_reduces_latency_penalties(self):
        """The paper's VI.B corollary: locality-aware routing reduces
        latency penalties vs round-robin."""
        def run(policy):
            sim = build_simple(
                HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
            host = Host(sim, policy=policy)
            reqs = [(CMD.RD64, i * 64, None) for i in range(256)]
            host.run(reqs)
            return sim.stats()["latency_penalties"]

        assert run(LinkPolicy.LOCALITY) < run(LinkPolicy.ROUND_ROBIN)
