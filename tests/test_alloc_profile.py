"""Allocation profiling (flat-hot-core satellite): tracemalloc top-N
plus packet-arena counters surfaced through ``--profile``."""

from __future__ import annotations

import json

from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.workloads.random_access import RandomAccessConfig, random_access_requests


def _small_run(prof_kwargs):
    from repro.analysis.profiling import attach

    device = DeviceConfig(num_links=4, num_banks=8, capacity=2)
    sim = HMCSim(SimConfig(device=device))
    sim.attach_host(0, 0)
    prof = attach(sim, **prof_kwargs)
    host = Host(sim)
    cfg = RandomAccessConfig(num_requests=64)
    host.run(random_access_requests(device.capacity_bytes, cfg), cub=0)
    return sim, prof


class TestAllocationProfiler:
    def test_window_captures_arena_traffic(self):
        sim, prof = _small_run({"allocations": True, "top_n": 5})
        alloc = prof.alloc
        assert alloc is not None
        alloc.stop()
        delta = alloc.arena_delta()
        # Requests and responses both flow through the arena on the
        # default path, and the run loop releases what it delivers.
        assert delta["pooled_builds"] + delta["fresh_builds"] > 0
        assert delta["released"] > 0
        assert len(alloc.top) <= 5
        assert alloc.peak_kb >= 0.0

    def test_stop_is_idempotent(self):
        sim, prof = _small_run({"allocations": True})
        prof.alloc.stop()
        top_first = list(prof.alloc.top)
        prof.alloc.stop()
        assert prof.alloc.top == top_first

    def test_report_is_json_serialisable(self):
        sim, prof = _small_run({"allocations": True})
        report = prof.report(sim.engine.stage_counts)
        assert "allocations" in report
        blob = json.loads(json.dumps(report))
        allocs = blob["allocations"]
        assert set(allocs) >= {"traced_kb", "peak_kb", "top", "arena", "arena_delta"}
        for entry in allocs["top"]:
            assert set(entry) == {"site", "size_kb", "count"}

    def test_render_includes_allocation_section(self):
        from repro.analysis.profiling import render

        sim, prof = _small_run({"allocations": True})
        text = render(prof, sim.engine.stage_counts)
        assert "engine profile" in text
        assert "allocation profile" in text
        assert "packet arena:" in text
        assert "pooled" in text

    def test_attach_without_allocations_unchanged(self):
        sim, prof = _small_run({})
        assert prof.alloc is None
        report = prof.report(sim.engine.stage_counts)
        assert "allocations" not in report

    def test_cli_profile_flag_prints_allocations(self, capsys, tmp_path):
        from repro.cli import main

        stats_json = tmp_path / "stats.json"
        assert main(["bandwidth", "--requests", "64", "--profile",
                     "--profile-alloc-top", "3",
                     "--stats-json", str(stats_json)]) == 0
        out = capsys.readouterr().out
        assert "engine profile" in out
        assert "allocation profile" in out
        tree = json.loads(stats_json.read_text())
        assert "allocations" in tree["profile"]
        assert len(tree["profile"]["allocations"]["top"]) <= 3
