"""Tests for BWR byte-masked write semantics."""

import pytest

from repro.core.bank import Bank
from repro.core.simulator import HMCSim
from repro.packets.commands import CMD
from repro.packets.packet import ErrStat, build_memrequest
from repro.topology.builder import build_simple


class TestBankMaskedWrite:
    @pytest.fixture
    def bank(self):
        return Bank(0, 1 << 20)

    def test_full_mask_writes_word(self, bank):
        bank.masked_write(0, 0x1122334455667788, 0xFF)
        assert bank.read(0, 16)[0] == 0x1122334455667788

    def test_partial_mask_preserves_unmasked_bytes(self, bank):
        bank.write(0, [0xAAAAAAAAAAAAAAAA, 0])
        bank.masked_write(0, 0x1111111111111111, 0x0F)  # low 4 bytes only
        assert bank.read(0, 16)[0] == 0xAAAAAAAA11111111

    def test_single_byte_mask(self, bank):
        bank.masked_write(0, 0xFFFFFFFFFFFFFFFF, 0x80)  # byte 7 only
        assert bank.read(0, 16)[0] == 0xFF00000000000000

    def test_zero_mask_is_noop_on_data(self, bank):
        bank.write(0, [0x42, 0])
        bank.masked_write(0, 0xFFFFFFFFFFFFFFFF, 0x00)
        assert bank.read(0, 16)[0] == 0x42

    def test_upper_half_word(self, bank):
        bank.masked_write(8, 0xDEAD, 0xFF)  # second word of atom 0
        assert bank.read(0, 16) == [0, 0xDEAD]

    def test_alignment_enforced(self, bank):
        with pytest.raises(ValueError):
            bank.masked_write(4, 0, 0xFF)

    def test_bounds_enforced(self, bank):
        with pytest.raises(ValueError):
            bank.masked_write(bank.capacity_bytes, 0, 0xFF)

    def test_counts_as_write(self, bank):
        bank.masked_write(0, 1, 0xFF)
        assert bank.writes == 1


class TestBwrEndToEnd:
    @pytest.fixture
    def sim(self):
        return build_simple(
            HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))

    def _round_trip(self, sim, reqs, expected_rsps):
        for pkt in reqs:
            sim.send(pkt)
        got = []
        for _ in range(30):
            sim.clock()
            got += sim.recv_all()
            if len(got) >= expected_rsps:
                break
        return got

    def test_bwr_masks_bytes_in_memory(self, sim):
        # Seed a full word, then BWR the low two bytes on the same link.
        self._round_trip(sim, [build_memrequest(
            0, 0x100, 1, CMD.WR16, payload=[0x8877665544332211, 0], link=0)], 1)
        self._round_trip(sim, [build_memrequest(
            0, 0x100, 2, CMD.BWR, payload=[0xEEEE, 0x03], link=0)], 1)
        got = self._round_trip(sim, [build_memrequest(
            0, 0x100, 3, CMD.RD16, link=0)], 1)
        assert got[-1].payload[0] == 0x887766554433EEEE

    def test_bwr_response_is_wr_rs(self, sim):
        got = self._round_trip(sim, [build_memrequest(
            0, 0x40, 1, CMD.BWR, payload=[1, 0xFF], link=0)], 1)
        assert got[0].cmd is CMD.WR_RS

    def test_posted_bwr_no_response(self, sim):
        sim.send(build_memrequest(0, 0x40, 0, CMD.P_BWR,
                                  payload=[0xAB, 0xFF], link=0))
        sim.clock(10)
        assert sim.packets_received == 0
        got = self._round_trip(sim, [build_memrequest(
            0, 0x40, 1, CMD.RD16, link=0)], 1)
        assert got[0].payload[0] == 0xAB

    def test_bwr_8_byte_aligned_target(self, sim):
        """BWR may target the upper 8-byte word of an atom."""
        got = self._round_trip(sim, [
            build_memrequest(0, 0x48, 1, CMD.BWR, payload=[0x55, 0xFF], link=0),
            build_memrequest(0, 0x40, 2, CMD.RD16, link=0),
        ], 2)
        read = next(r for r in got if r.tag == 2)
        assert list(read.payload) == [0, 0x55]
