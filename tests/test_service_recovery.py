"""Self-healing service: chaos campaigns, crash recovery, failover.

The PR-8 resilience contracts, end to end:

* chaos campaigns are bit-identical across repeated runs and across
  both engine schedulers (the tentpole determinism criterion);
* an armed shard survives crashes by epoch restore + journal replay,
  and every recovery is billed (``crash_recoveries`` / ``replayed_requests``)
  without breaking the integer consistency block;
* a terminal shard death displaces its sessions, which fail over to a
  respun shard under bounded retries — conservation
  (``requests_sent == responses + lost_inflight``) holds throughout;
* the end-of-serve auditor proves every admitted tenant terminated
  exactly once, even under a scripted multi-crash campaign;
* arming the machinery without injecting faults does not change the
  simulated outcome (disarmed-parity criterion);
* per-request deadlines, circuit breakers and resilience-knob
  validation behave as documented.
"""

from __future__ import annotations

import pytest

from repro.analysis.tenants import (
    audit_report,
    check_consistency,
    deterministic_view,
    slo_report,
)
from repro.core.config import DeviceConfig
from repro.core.errors import E_DEADLINE, DeadlineError, InitError
from repro.faults.chaos import ChaosEvent, ChaosSchedule
from repro.service import (
    BreakerState,
    CircuitBreaker,
    MemoryService,
    PriorityClass,
    ServiceConfig,
    TenantSpec,
    specs_from_profiles,
)
from repro.workloads.mixes import tenant_mix_profiles

_DEVICE = DeviceConfig(num_links=4, num_banks=8, capacity=2)


def _config(**overrides) -> ServiceConfig:
    base = dict(
        device=_DEVICE,
        devs_per_shard=2,
        slots_per_shard=2,
        max_shards=2,
        provision_requests=32,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _serve(num_tenants=8, seed=5, base_requests=16, **overrides) -> dict:
    config = _config(**overrides)
    profiles = tenant_mix_profiles(
        num_tenants, seed=seed, base_requests=base_requests
    )
    return MemoryService(config).serve_sync(
        specs_from_profiles(profiles, config)
    )


def _crash_campaign():
    """Scripted three-crash campaign against shard 0."""
    return ChaosSchedule([
        ChaosEvent(at=60, kind="shard_crash", shard=0),
        ChaosEvent(at=140, kind="watchdog_trip", shard=0),
        ChaosEvent(at=220, kind="shard_crash", shard=0),
    ])


_ARMED = dict(checkpoint_interval=64, failover_retries=2,
              breaker_threshold=3)


class TestChaosDeterminism:
    def test_campaign_bit_identical_across_runs(self):
        a = _serve(chaos=_crash_campaign(), **_ARMED)
        b = _serve(chaos=_crash_campaign(), **_ARMED)
        assert a["recovery"]["crashes"] > 0
        assert deterministic_view(a) == deterministic_view(b)

    def test_campaign_invariant_across_schedulers(self):
        a = _serve(chaos=_crash_campaign(), scheduler="active", **_ARMED)
        b = _serve(chaos=_crash_campaign(), scheduler="naive", **_ARMED)
        assert deterministic_view(a, ignore_config=True) == \
            deterministic_view(b, ignore_config=True)

    def test_campaign_stamps_invariant_across_cycles_per_yield(self):
        # Events are stamped in per-shard pumped cycles, so the front
        # end's yield granularity cannot move them.  (Lease-grant
        # timing — and hence accounting — legitimately varies with the
        # tick size, exactly as it did before chaos existed.)
        a = _serve(chaos=_crash_campaign(), cycles_per_yield=16, **_ARMED)
        b = _serve(chaos=_crash_campaign(), cycles_per_yield=128, **_ARMED)
        assert a["chaos"] == b["chaos"]
        assert a["chaos"]["fired"]
        for ev in a["chaos"]["fired"]:
            assert ev["fired_at"] == ev["at"]

    def test_armed_fault_free_matches_disarmed(self):
        # Journaling + checkpointing + breakers armed but no chaos:
        # the simulated outcome must be exactly the disarmed one.
        armed = _serve(**_ARMED)
        disarmed = _serve()
        va = deterministic_view(armed, ignore_config=True)
        vd = deterministic_view(disarmed, ignore_config=True)
        assert va["accounting"] == vd["accounting"]
        assert va["consistency"] == vd["consistency"]


class TestCrashRecovery:
    def test_crashes_recover_and_complete(self):
        rep = _serve(chaos=_crash_campaign(), **_ARMED)
        rec = rep["recovery"]
        assert rec["crashes"] >= 1
        assert rec["recoveries"] >= 1
        statuses = {a["status"]
                    for a in rep["accounting"]["tenants"].values()}
        assert statuses <= {"done"}
        assert not check_consistency(rep)

    def test_recovery_is_billed(self):
        rep = _serve(chaos=_crash_campaign(), **_ARMED)
        totals = rep["accounting"]["totals"]
        assert totals["crash_recoveries"] >= 1
        assert totals["replay_cycles"] >= 0
        events = rep["recovery"]["events"]
        assert any(ev["kind"] == "crash_recovered" for ev in events)

    def test_auditor_passes_multi_crash_campaign(self):
        rep = _serve(chaos=_crash_campaign(), **_ARMED)
        assert rep["audit"]["ok"], rep["audit"]["violations"]
        for acct in rep["accounting"]["tenants"].values():
            assert acct["terminations"] == 1

    def test_recovery_budget_exhaustion_turns_terminal(self):
        # One allowed restore, three crashes: the shard eventually
        # retires; failover still lands everyone.
        rep = _serve(chaos=_crash_campaign(), checkpoint_interval=64,
                     max_shard_recoveries=1, failover_retries=2)
        assert any(s["dead"] for s in rep["shards"])
        assert rep["audit"]["ok"], rep["audit"]["violations"]

    def test_chaos_events_fire_exactly_once(self):
        rep = _serve(chaos=_crash_campaign(), **_ARMED)
        fired = rep["chaos"]["fired"]
        assert len(fired) == 3
        # A restore rewinds pumped cycles past an already-fired stamp;
        # one-shot semantics mean no stamp appears twice.
        stamps = [(ev["shard"], ev["at"], ev["kind"]) for ev in fired]
        assert len(stamps) == len(set(stamps))


class TestFailover:
    def test_displaced_sessions_fail_over_and_finish(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        rep = _serve(chaos=chaos, failover_retries=2)
        totals = rep["accounting"]["totals"]
        assert totals["failovers"] >= 1
        statuses = {a["status"]
                    for a in rep["accounting"]["tenants"].values()}
        assert statuses <= {"done"}
        assert rep["audit"]["ok"], rep["audit"]["violations"]

    def test_pool_respins_replacement_shard(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        rep = _serve(chaos=chaos, failover_retries=2)
        assert any(s["dead"] for s in rep["shards"])
        assert any(not s["dead"] for s in rep["shards"])
        assert any(ev["kind"] == "shard_retired"
                   for ev in rep["recovery"]["events"])

    def test_conservation_holds_with_lost_inflight(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        rep = _serve(chaos=chaos, failover_retries=2)
        for acct in rep["accounting"]["tenants"].values():
            assert acct["requests_sent"] == \
                acct["responses"] + acct["lost_inflight"]

    def test_failover_disarmed_is_terminal(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        rep = _serve(chaos=chaos)
        statuses = [a["status"]
                    for a in rep["accounting"]["tenants"].values()]
        assert "crashed" in statuses
        assert rep["audit"]["ok"], rep["audit"]["violations"]

    def test_failover_determinism(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        a = _serve(chaos=chaos, failover_retries=2)
        b = _serve(chaos=chaos, failover_retries=2)
        assert deterministic_view(a) == deterministic_view(b)


class TestLinkAndLatencyChaos:
    def test_link_kill_strands_slot_session(self):
        chaos = ChaosSchedule([
            ChaosEvent(at=60, kind="link_kill", dev=0, link=0),
        ])
        rep = _serve(chaos=chaos)
        statuses = [a["status"]
                    for a in rep["accounting"]["tenants"].values()]
        assert "link_failed" in statuses
        assert rep["audit"]["ok"], rep["audit"]["violations"]

    def test_link_kill_with_failover_completes(self):
        chaos = ChaosSchedule([
            ChaosEvent(at=60, kind="link_kill", dev=0, link=0),
        ])
        rep = _serve(chaos=chaos, failover_retries=2)
        statuses = {a["status"]
                    for a in rep["accounting"]["tenants"].values()}
        assert statuses <= {"done"}
        assert rep["accounting"]["totals"]["failovers"] >= 1

    def test_latency_spike_adds_network_delay(self):
        chaos = ChaosSchedule([
            ChaosEvent(at=16, kind="latency_spike",
                       extra_delay=32, duration=512),
        ])
        base = _serve()
        spiked = _serve(chaos=chaos)
        assert (spiked["accounting"]["totals"]["network_delay_cycles"]
                > base["accounting"]["totals"]["network_delay_cycles"])
        assert spiked["audit"]["ok"]

    def test_link_degrade_is_billed(self):
        chaos = ChaosSchedule([
            ChaosEvent(at=60, kind="link_degrade", dev=0, link=0),
        ])
        rep = _serve(chaos=chaos)
        totals = rep["accounting"]["totals"]
        assert totals["degradations_seen"] + sum(
            s["unattributed_degradations"] for s in rep["shards"]
        ) >= 1
        assert not check_consistency(rep)


class TestDeadlines:
    def test_e_deadline_constant(self):
        assert E_DEADLINE == -7
        assert DeadlineError("late").errno == E_DEADLINE

    def test_deadline_misses_counted(self):
        profiles = tenant_mix_profiles(4, seed=5, base_requests=16)
        for p in profiles:
            p["deadline_cycles"] = 1  # brutally tight: everything misses
        config = _config()
        rep = MemoryService(config).serve_sync(
            specs_from_profiles(profiles, config)
        )
        assert rep["accounting"]["totals"]["deadline_misses"] > 0
        assert rep["audit"]["ok"], rep["audit"]["violations"]

    def test_no_deadline_no_misses(self):
        rep = _serve()
        assert rep["accounting"]["totals"]["deadline_misses"] == 0

    def test_negative_deadline_rejected(self):
        with pytest.raises(InitError, match="deadline_cycles"):
            TenantSpec(tenant_id="t", requests=iter(()),
                       deadline_cycles=-1)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        brk = CircuitBreaker(threshold=3, cooldown=100)
        for _ in range(2):
            brk.record_failure(now=10)
        assert brk.state is BreakerState.CLOSED
        brk.record_failure(now=10)
        assert brk.state is BreakerState.OPEN
        assert not brk.try_acquire(now=50)

    def test_half_open_probe_then_close(self):
        brk = CircuitBreaker(threshold=1, cooldown=100)
        brk.record_failure(now=0)
        assert brk.try_acquire(now=100)  # cooldown over: the probe
        assert brk.state is BreakerState.HALF_OPEN
        assert not brk.try_acquire(now=100)  # only one probe
        brk.record_success(now=150)
        assert brk.state is BreakerState.CLOSED
        assert brk.try_acquire(now=150)

    def test_half_open_failure_reopens(self):
        brk = CircuitBreaker(threshold=1, cooldown=100)
        brk.record_failure(now=0)
        assert brk.try_acquire(now=100)
        brk.record_failure(now=120)
        assert brk.state is BreakerState.OPEN
        assert brk.opened_at == 120
        assert not brk.try_acquire(now=219)
        assert brk.try_acquire(now=220)

    def test_success_resets_failure_streak(self):
        brk = CircuitBreaker(threshold=2, cooldown=10)
        brk.record_failure(now=0)
        brk.record_success(now=1)
        brk.record_failure(now=2)
        assert brk.state is BreakerState.CLOSED

    def test_breaker_in_service_run(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        rep = _serve(chaos=chaos, failover_retries=2, breaker_threshold=2,
                     breaker_cooldown=256)
        breakers = rep["recovery"]["breakers"]
        assert "0" in breakers
        assert rep["audit"]["ok"], rep["audit"]["violations"]


class TestKnobValidation:
    @pytest.mark.parametrize("field,value", [
        ("checkpoint_interval", -1),
        ("max_shard_recoveries", -1),
        ("failover_retries", -1),
        ("failover_backoff", 0),
        ("breaker_threshold", -1),
        ("breaker_cooldown", 0),
    ])
    def test_bad_knob_names_field(self, field, value):
        with pytest.raises(InitError, match=field):
            _config(**{field: value})

    def test_chaos_type_checked(self):
        with pytest.raises(InitError, match="ChaosSchedule"):
            _config(chaos=[ChaosEvent(at=1, kind="shard_crash")])


class TestSloAndAudit:
    def test_slo_report_fault_free(self):
        rep = _serve()
        for row in rep["slo"].values():
            assert row["met"]
            assert row["success_rate"] == 1.0
            assert row["error_budget_burn"] == 0.0

    def test_slo_report_counts_failures(self):
        chaos = ChaosSchedule([ChaosEvent(at=120, kind="shard_crash")])
        rep = _serve(chaos=chaos)  # disarmed: crash is terminal
        slo = slo_report(rep)
        assert sum(row["failed"] for row in slo.values()) >= 1
        assert any(not row["met"] for row in slo.values())

    def test_audit_flags_fabricated_violation(self):
        rep = _serve(num_tenants=2)
        tid, acct = next(iter(rep["accounting"]["tenants"].items()))
        acct["terminations"] = 2
        acct["requests_sent"] += 5
        audit = audit_report(rep)
        assert not audit["ok"]
        joined = " ".join(audit["violations"])
        assert "terminated 2 times" in joined
        assert "conservation" in joined

    def test_rejected_tenants_terminate_once(self):
        rep = _serve(num_tenants=12, max_waiting=2, max_shards=1,
                     slots_per_shard=2)
        statuses = [a["status"]
                    for a in rep["accounting"]["tenants"].values()]
        assert "rejected" in statuses
        assert rep["audit"]["ok"], rep["audit"]["violations"]
