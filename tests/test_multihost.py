"""Tests for multiple hosts sharing one cube fabric (partitioned links)."""

import pytest

from repro.core.errors import TopologyError
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.workloads.lcg import LCG


def mk_sim():
    return build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))


class TestPartitioning:
    def test_links_subset_validated(self):
        sim = mk_sim()
        with pytest.raises(TopologyError):
            Host(sim, links=[(0, 9)])
        with pytest.raises(TopologyError):
            Host(sim, links=[(1, 0)])

    def test_partitioned_host_uses_only_its_links(self):
        sim = mk_sim()
        a = Host(sim, links=[(0, 0), (0, 1)])
        for i in range(8):
            a.send_request(CMD.RD64, i * 64)
        used = {ctx.link for p in a.tag_pools.values()
                for ctx in (p.context(t) for t in p.outstanding_tags())}
        assert used <= {0, 1}

    def test_empty_partition_rejected(self):
        sim = mk_sim()
        with pytest.raises(TopologyError):
            Host(sim, links=[])


class TestTwoHosts:
    def test_responses_never_cross_hosts(self):
        """Two hosts on disjoint links: each receives exactly its own
        responses, even with identical tags in flight."""
        sim = mk_sim()
        a = Host(sim, links=[(0, 0), (0, 1)])
        b = Host(sim, links=[(0, 2), (0, 3)])
        rng = LCG(5)
        for i in range(32):
            a.send_request(CMD.RD64, rng.next_below(1 << 20) * 64)
            b.send_request(CMD.RD64, rng.next_below(1 << 20) * 64)
        for _ in range(400):
            sim.clock()
            a.drain_responses()
            b.drain_responses()
            if a.outstanding == 0 and b.outstanding == 0:
                break
        assert a.received == 32
        assert b.received == 32
        assert a.errors == 0 and b.errors == 0

    def test_two_hosts_data_isolation(self):
        """Host A's writes are visible to host B (shared memory), with
        each host's own stream ordering intact."""
        sim = mk_sim()
        a = Host(sim, links=[(0, 0)])
        b = Host(sim, links=[(0, 1)])
        a.send_request(CMD.WR64, 0x8000, payload=[0xA] * 8)
        for _ in range(20):
            sim.clock()
            a.drain_responses()
        tag = b.send_request(CMD.RD64, 0x8000)
        rsp = None
        for _ in range(20):
            sim.clock()
            for r in b.drain_responses():
                if r.tag == tag:
                    rsp = r
            if rsp:
                break
        assert rsp is not None
        assert list(rsp.payload) == [0xA] * 8

    def test_interleaved_run_loops(self):
        """Manually interleaved drive loops complete both hosts' work."""
        sim = mk_sim()
        a = Host(sim, links=[(0, 0), (0, 1)])
        b = Host(sim, links=[(0, 2), (0, 3)])
        wa = [(CMD.WR64, 0x10000 + i * 64, [1] * 8) for i in range(64)]
        wb = [(CMD.RD64, 0x20000 + i * 64, None) for i in range(64)]
        ia, ib = iter(wa), iter(wb)
        pa = pb = None
        done_a = done_b = False
        for _ in range(2000):
            for host, it, pending, setter in (
                (a, ia, pa, "pa"), (b, ib, pb, "pb")):
                while True:
                    if pending is None:
                        try:
                            pending = next(it)
                        except StopIteration:
                            break
                    cmd, addr, payload = pending
                    if host.send_request(cmd, addr, payload=payload) is None:
                        break
                    pending = None
                if setter == "pa":
                    pa = pending
                else:
                    pb = pending
            sim.clock()
            a.drain_responses()
            b.drain_responses()
            done_a = pa is None and a.outstanding == 0 and a.sent == 64
            done_b = pb is None and b.outstanding == 0 and b.sent == 64
            if done_a and done_b:
                break
        assert done_a and done_b
        assert a.received == 64 and b.received == 64
