"""The parallel subsystem: worker pool, shard planning, runner, engine.

Bit-level workload equivalence of the sharded engine lives in
tests/test_scheduler_equivalence.py (TestShardedEngineEquivalence);
this module covers the machinery around it — the fork pool's error
propagation, the partitioner's coverage invariants, the run-level
facade, and the engine's lifecycle seams (backdoor guards, reset,
fallbacks).
"""

from __future__ import annotations

import pytest

from repro.core.config import DeviceConfig, PAPER_CONFIGS, SimConfig
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.packets.packet import build_memrequest
from repro.parallel import (
    ParallelSimRunner,
    RemoteError,
    RunSpec,
    WorkerPool,
    default_pool_size,
    plan_shards,
    run_spec,
    table1_specs,
)
from repro.parallel.channels import ChannelClosed
from repro.topology.builder import build_chain, build_simple
from repro.workloads.random_access import (
    RandomAccessConfig,
    random_access_requests,
)

DEVICE = DeviceConfig(num_links=4, num_banks=8, capacity=2)


# -- module-level task functions (pool workers must pickle them) -----------


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError(f"boom at {x}")
    return x


def _addmul(a, b):
    return a + 10 * b


class TestWorkerPool:
    def test_map_preserves_order(self):
        with WorkerPool(processes=2) as pool:
            assert pool.map(_square, range(7)) == [x * x for x in range(7)]

    def test_pool_is_reusable_across_maps(self):
        with WorkerPool(processes=2) as pool:
            assert pool.map(_square, [1, 2]) == [1, 4]
            assert pool.map(_square, [3, 4]) == [9, 16]

    def test_starmap_unpacks(self):
        with WorkerPool(processes=2) as pool:
            assert pool.starmap(_addmul, [(1, 2), (3, 4)]) == [21, 43]

    def test_remote_error_carries_traceback_and_index(self):
        with WorkerPool(processes=2) as pool:
            with pytest.raises(RemoteError) as ei:
                pool.map(_fail_on_three, [1, 2, 3, 4])
            msg = str(ei.value)
            assert "task #2" in msg          # the failing item's index
            assert "boom at 3" in msg        # the original message
            assert "ValueError" in msg       # the original type
            assert "_fail_on_three" in msg   # the worker-side traceback
            # The failure drained in-flight work; the pool still serves.
            assert pool.map(_square, [5]) == [25]

    def test_closed_pool_refuses_work(self):
        pool = WorkerPool(processes=1)
        pool.close()
        with pytest.raises(ChannelClosed):
            pool.map(_square, [1])
        pool.close()  # idempotent

    def test_default_pool_size_positive(self):
        assert default_pool_size() >= 1


class TestShardPlanning:
    def _chain_sim(self, num_devs=2):
        return build_chain(
            HMCSim(SimConfig(device=DEVICE, num_devs=num_devs)), host_links=1
        )

    def test_auto_picks_device_strategy_on_chains(self):
        sim = self._chain_sim()
        plan = plan_shards(sim, workers=2)
        assert plan.strategy == "device"
        assert plan.num_shards == 2
        # Each shard owns whole devices.
        for shard in plan.shards:
            assert len({dev for dev, _ in shard}) == 1

    def test_auto_picks_vault_strategy_single_device(self):
        sim = build_simple(HMCSim(SimConfig(device=DEVICE)))
        plan = plan_shards(sim, workers=2)
        assert plan.strategy == "vault"
        # Vault groups stay quad-aligned: each shard's vault count is a
        # multiple of the 4-vault quad (8 vaults / 2 workers = 4 each).
        assert all(len(s) % 4 == 0 for s in plan.shards)

    def test_every_vault_owned_exactly_once(self):
        sim = self._chain_sim(num_devs=3)
        for workers in (2, 3, 5):
            plan = plan_shards(sim, workers=workers)
            owners = plan.owner_of()
            want = 3 * DEVICE.num_vaults
            assert len(owners) == want
            assert plan.num_shards <= workers

    def test_lookahead_is_at_least_one_cycle(self):
        for sim in (self._chain_sim(), build_simple(HMCSim(SimConfig(device=DEVICE)))):
            for strategy in ("device", "vault"):
                plan = plan_shards(sim, workers=2, strategy=strategy)
                assert plan.lookahead >= 1

    def test_explicit_vault_strategy_on_chain(self):
        sim = self._chain_sim()
        plan = plan_shards(sim, workers=2, strategy="vault")
        assert plan.strategy == "vault"
        # Vault cut spans every device in each shard.
        for shard in plan.shards:
            assert {dev for dev, _ in shard} == {0, 1}


class TestRunner:
    def test_run_spec_summary_shape(self):
        spec = RunSpec(label="t", device=DEVICE, num_requests=128)
        out = run_spec(spec)
        assert out["label"] == "t"
        assert out["requests"] == 128
        assert out["cycles"] > 0
        assert out["workers"] == 1

    def test_table1_specs_cover_paper_configs(self):
        specs = table1_specs(num_requests=64)
        assert [s.label for s in specs] == list(PAPER_CONFIGS)

    def test_pool_matches_inline_cycle_counts(self):
        specs = [
            RunSpec(label=label, device=dev, num_requests=128)
            for label, dev in list(PAPER_CONFIGS.items())[:2]
        ]
        inline = ParallelSimRunner(processes=1).run_many(specs)
        with ParallelSimRunner(processes=2) as runner:
            pooled = runner.run_many(specs)
        assert [r["cycles"] for r in inline] == [r["cycles"] for r in pooled]
        assert [r["label"] for r in pooled] == [s.label for s in specs]

    def test_run_many_empty(self):
        assert ParallelSimRunner(processes=2).run_many([]) == []

    def test_sharded_spec_inside_pool_degrades_to_serial(self):
        """A workers>1 spec dispatched into a daemonic pool lane cannot
        fork grandchildren; the sim must fall back to the serial engine
        (bit-identical) instead of crashing the lane."""
        sharded = RunSpec(label="n", device=DEVICE, num_requests=64, workers=2)
        serial = RunSpec(label="n", device=DEVICE, num_requests=64)
        with ParallelSimRunner(processes=2) as runner:
            pooled = runner.run_many([sharded, sharded])
        want = run_spec(serial)["cycles"]
        assert [r["cycles"] for r in pooled] == [want, want]


def _loaded_sim(workers: int, num_requests: int = 200) -> HMCSim:
    """A single-cube sim with *num_requests* of seeded traffic retired."""
    scfg = SimConfig(device=DEVICE, workers=workers)
    sim = build_simple(HMCSim(scfg))
    host = Host(sim)
    cfg = RandomAccessConfig(num_requests=num_requests, seed=5)
    host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=0)
    return sim


class TestParallelEngineLifecycle:
    def test_workers_1_stays_on_serial_engine(self):
        """The default path never pays for (or imports) the shard layer."""
        from repro.core.clock import ClockEngine

        sim = HMCSim(SimConfig(device=DEVICE, workers=1))
        assert type(sim.engine) is ClockEngine

    def test_workers_2_builds_parallel_engine(self):
        from repro.parallel.engine import ParallelClockEngine

        sim = HMCSim(SimConfig(device=DEVICE, workers=2))
        assert type(sim.engine) is ParallelClockEngine
        sim.free()

    def test_ecc_config_falls_back_to_serial_engine(self):
        """RAS scrubbing reads bank storage master-side every tick —
        sharding would race it, so ECC sims stay serial."""
        from repro.core.clock import ClockEngine

        ecc = DeviceConfig(num_links=4, num_banks=8, capacity=2,
                           ecc_enabled=True)
        sim = HMCSim(SimConfig(device=ecc, workers=4))
        assert type(sim.engine) is ClockEngine

    def test_peek_sees_worker_authoritative_state(self):
        serial = _loaded_sim(workers=1)
        sharded = _loaded_sim(workers=2)
        # Bank storage lives in the workers; peek must pull it back.
        for addr in (0x0, 0x1000, 0x8000):
            assert sharded.devices[0].peek(addr) == serial.devices[0].peek(addr)
        assert sharded.stats() == serial.stats()
        serial.free()
        sharded.free()

    def test_poke_then_continue_matches_serial(self):
        def drive(workers):
            sim = _loaded_sim(workers, num_requests=100)
            sim.devices[0].poke(0x40, [0xDEAD, 0xBEEF])
            host = Host(sim)
            cfg = RandomAccessConfig(num_requests=100, seed=9)
            host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=0)
            out = (sim.clock_value, sim.devices[0].peek(0x40), sim.stats())
            sim.free()
            return out

        assert drive(2) == drive(1)

    def test_reset_retires_workers_and_reuses(self):
        sim = _loaded_sim(workers=2, num_requests=100)
        first = sim.clock_value
        sim.reset()
        assert sim.clock_value == 0
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=100, seed=5)
        host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=0)
        assert sim.clock_value == first
        sim.free()

    def test_inband_mode_registers_match_serial(self):
        """MODE packets mutate the master's register file via effect-log
        replay; the in-band write must be visible to the in-band read
        and to JTAG, exactly as on the serial engine."""
        from repro.registers.regdefs import index_by_name, physical_index

        def drive(workers):
            sim = build_simple(HMCSim(SimConfig(device=DEVICE, workers=workers)))
            reg = physical_index(index_by_name("EDR1"))
            sim.send(build_memrequest(0, reg, 1, CMD.MD_WR,
                                      payload=[0x77, 0], link=0))
            sim.clock(10)
            wr = sim.recv()
            sim.send(build_memrequest(0, reg, 2, CMD.MD_RD, link=0))
            sim.clock(10)
            rd = sim.recv()
            out = (wr.cmd, rd.cmd, tuple(rd.payload),
                   sim.jtag_reg_read(0, reg), sim.clock_value)
            sim.free()
            return out

        sharded = drive(2)
        assert sharded == drive(1)
        assert sharded[0] is CMD.MD_WR_RS
        assert sharded[2][0] == 0x77

    def test_checkpoint_roundtrip_reforks_lazily(self):
        from repro.core.checkpoint import restore, snapshot
        from repro.parallel.engine import ParallelClockEngine

        def tail(sim):
            host = Host(sim)
            cfg = RandomAccessConfig(num_requests=100, seed=11)
            host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=0)
            return (sim.clock_value, sim.stats())

        original = _loaded_sim(workers=2, num_requests=100)
        blob = snapshot(original)
        restored = restore(blob)
        assert type(restored.engine) is ParallelClockEngine
        a = tail(original)
        b = tail(restored)
        assert a == b
        reference = _loaded_sim(workers=1, num_requests=100)
        assert tail(reference) == a
        original.free()
        restored.free()
        reference.free()
