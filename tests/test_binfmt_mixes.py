"""Tests for the binary trace format and workload mixes."""

import io

import pytest

from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD, is_read, is_write
from repro.topology.builder import build_simple
from repro.trace.binfmt import (
    BinarySink,
    BinaryTraceError,
    binary_num_vaults,
    decode_event,
    encode_event,
    parse_binary,
    read_file_header,
    write_file_header,
)
from repro.trace.events import EventType, TraceEvent
from repro.trace.parse import replay_into_stats
from repro.workloads.mixes import bursty, phases, run_with_bubbles, weighted_mix
from repro.workloads.random_access import RandomAccessConfig, random_access_requests
from repro.workloads.stream import stream_requests


def ev(**kw):
    base = dict(type=EventType.RQST_READ, cycle=7, dev=0, vault=3, bank=1,
                serial=42)
    base.update(kw)
    return TraceEvent(**base)


class TestBinaryRecords:
    def test_round_trip_basic(self):
        blob = encode_event(ev())
        out = decode_event(io.BytesIO(blob))
        assert out.type is EventType.RQST_READ
        assert (out.cycle, out.dev, out.vault, out.bank, out.serial) == (7, 0, 3, 1, 42)

    def test_round_trip_with_extras(self):
        e = ev(extra={"addr": 123456, "busy": True})
        out = decode_event(io.BytesIO(encode_event(e)))
        assert out.extra == {"addr": 123456, "busy": True}

    def test_unset_fields_survive(self):
        e = TraceEvent(type=EventType.XBAR_RQST_STALL, cycle=9)
        out = decode_event(io.BytesIO(encode_event(e)))
        assert out.dev == -1 and out.vault == -1 and out.serial == -1

    def test_empty_stream_returns_none(self):
        assert decode_event(io.BytesIO(b"")) is None

    def test_truncation_detected(self):
        blob = encode_event(ev())
        with pytest.raises(BinaryTraceError):
            decode_event(io.BytesIO(blob[:10]))

    def test_bad_magic_detected(self):
        blob = bytearray(encode_event(ev()))
        blob[0] ^= 0xFF
        with pytest.raises(BinaryTraceError):
            decode_event(io.BytesIO(bytes(blob)))

    def test_compactness_vs_ndjson(self):
        """The format's reason to exist: ~5-10x smaller than NDJSON."""
        import json
        e = ev()
        binary = len(encode_event(e))
        text = len(json.dumps(e.to_dict()))
        assert binary < text / 1.5


class TestFileFormat:
    def test_header_round_trip(self):
        buf = io.BytesIO()
        write_file_header(buf, num_vaults=32)
        buf.seek(0)
        assert read_file_header(buf) == {"version": 1, "num_vaults": 32}

    def test_bad_header_rejected(self):
        with pytest.raises(BinaryTraceError):
            read_file_header(io.BytesIO(b"NOTATRACE headerpad"))

    def test_sink_and_parse_round_trip(self):
        buf = io.BytesIO()
        sink = BinarySink(buf, num_vaults=16)
        events = [ev(cycle=i, vault=i % 16) for i in range(100)]
        for e in events:
            sink.emit(e)
        sink.close()
        assert sink.records == 100
        buf.seek(0)
        parsed = list(parse_binary(buf))
        assert len(parsed) == 100
        assert [p.cycle for p in parsed] == list(range(100))

    def test_stats_rebuild_from_binary(self):
        """End-to-end: trace a run to binary, rebuild Figure-5 stats."""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        buf = io.BytesIO()
        sim.set_trace_mask(EventType.FIGURE5)
        sink = sim.add_trace_sink(BinarySink(buf, num_vaults=16))
        host = Host(sim)
        host.run([(CMD.RD64, i * 64, None) for i in range(64)])
        buf.seek(0)
        nv = binary_num_vaults(buf)
        buf.seek(0)
        stats = replay_into_stats(parse_binary(buf), num_vaults=nv)
        assert stats.figure5_series()["read_requests"].total == 64


class TestWeightedMix:
    def rd_stream(self, n):
        return [(CMD.RD64, i * 64, None) for i in range(n)]

    def wr_stream(self, n):
        return [(CMD.WR64, i * 64, [1] * 8) for i in range(n)]

    def test_total_count(self):
        out = list(weighted_mix(
            [self.rd_stream(100), self.wr_stream(100)], [1, 1], total=50))
        assert len(out) == 50

    def test_weights_bias_selection(self):
        out = list(weighted_mix(
            [self.rd_stream(1000), self.wr_stream(1000)], [9, 1], total=400))
        reads = sum(1 for c, _, _ in out if is_read(c))
        assert reads > 300

    def test_exhausted_stream_drops_out(self):
        out = list(weighted_mix(
            [self.rd_stream(5), self.wr_stream(100)], [1, 1], total=50))
        assert len(out) == 50
        assert sum(1 for c, _, _ in out if is_read(c)) == 5

    def test_all_exhausted_ends_early(self):
        out = list(weighted_mix(
            [self.rd_stream(3), self.wr_stream(3)], [1, 1], total=50))
        assert len(out) == 6

    def test_deterministic(self):
        mk = lambda: list(weighted_mix(
            [self.rd_stream(50), self.wr_stream(50)], [1, 2], total=40, seed=9))
        assert mk() == mk()

    def test_validation(self):
        with pytest.raises(ValueError):
            list(weighted_mix([], [], total=1))
        with pytest.raises(ValueError):
            list(weighted_mix([self.rd_stream(1)], [-1], total=1))


class TestPhasesAndBursts:
    def test_phases_concatenate(self):
        out = list(phases(
            stream_requests(2 << 30, 5),
            [(CMD.WR16, 0, [1, 2])],
        ))
        assert len(out) == 6
        assert is_write(out[-1][0])

    def test_bursty_inserts_bubbles(self):
        out = list(bursty([(CMD.RD16, 0, None)] * 6, burst_len=2, gap_len=3))
        # Three full (burst, gap) rounds; exhaustion is only discovered
        # on the fourth burst attempt, so each round carries its gap.
        assert out.count(None) == 9
        assert len([x for x in out if x is not None]) == 6

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            list(bursty([], burst_len=0, gap_len=1))

    def test_run_with_bubbles_end_to_end(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        host = Host(sim)
        stream = bursty([(CMD.RD64, i * 64, None) for i in range(32)],
                        burst_len=4, gap_len=8)
        res = run_with_bubbles(host, stream)
        assert res.responses_received == 32
        # Bubbles stretch the run: at least gap cycles per burst gap.
        assert res.cycles >= 7 * 8

    def test_mixed_phases_run_on_simulator(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=64)
        work = phases(
            stream_requests(2 << 30, 64),
            random_access_requests(2 << 30, cfg),
        )
        res = host.run(work)
        assert res.responses_received == 128
        assert res.errors_received == 0
