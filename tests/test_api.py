"""Tests for the C-style API facade (repro.core.api) — the Fig. 4 flow."""

import pytest

from repro.core.api import (
    hmcsim_build_memrequest,
    hmcsim_clock,
    hmcsim_decode_packet,
    hmcsim_free,
    hmcsim_init,
    hmcsim_jtag_reg_read,
    hmcsim_jtag_reg_write,
    hmcsim_link_config,
    hmcsim_recv,
    hmcsim_send,
    hmcsim_t,
    hmcsim_trace_level,
)
from repro.core.errors import E_INVAL, E_NODATA, E_OK, E_STALL
from repro.packets.commands import CMD
from repro.registers.regdefs import index_by_name, physical_index


def init_simple():
    hmc = hmcsim_t()
    ret = hmcsim_init(hmc, num_devs=1, num_links=4, num_vaults=16,
                      queue_depth=64, num_banks=8, num_drams=8,
                      capacity=2, xbar_depth=128)
    assert ret == E_OK
    for link in range(4):
        assert hmcsim_link_config(hmc, 0, link, hmc.sim.host_cub, 0, "host") == E_OK
    return hmc


class TestFigure4Sequence:
    def test_full_paper_calling_sequence(self):
        """Transliteration of Fig. 4: init -> link config -> build ->
        send -> clock -> recv -> free."""
        hmc = init_simple()
        payload = [0] * 8
        ret, head, tail, packet = hmcsim_build_memrequest(
            hmc, 0, 0x1000, 17, "RD_64", 0, payload)
        assert ret == E_OK
        assert head != 0 and tail != 0
        assert hmcsim_send(hmc, packet) == E_OK
        for _ in range(10):
            assert hmcsim_clock(hmc) == E_OK
        ret, words = hmcsim_recv(hmc, 0, 0)
        assert ret == E_OK
        ret, fields = hmcsim_decode_packet(words)
        assert ret == E_OK
        assert fields["cmd"] == "RD_RS"
        assert fields["tag"] == 17
        assert fields["is_response"]
        assert hmcsim_free(hmc) == E_OK

    def test_write_then_read_data_via_facade(self):
        hmc = init_simple()
        data = [0x1111, 0x2222, 0x3333, 0x4444, 0x5555, 0x6666, 0x7777, 0x8888]
        _, _, _, wr = hmcsim_build_memrequest(hmc, 0, 0x2000, 1, "WR64", 0, data)
        assert hmcsim_send(hmc, wr) == E_OK
        for _ in range(10):
            hmcsim_clock(hmc)
        hmcsim_recv(hmc, 0, 0)
        _, _, _, rd = hmcsim_build_memrequest(hmc, 0, 0x2000, 2, "RD64", 0)
        hmcsim_send(hmc, rd)
        for _ in range(10):
            hmcsim_clock(hmc)
        ret, words = hmcsim_recv(hmc, 0, 0)
        assert ret == E_OK
        _, fields = hmcsim_decode_packet(words)
        assert fields["payload"] == data


class TestErrorCodes:
    def test_bad_init_returns_einval(self):
        hmc = hmcsim_t()
        assert hmcsim_init(hmc, 1, 5, 16, 64, 8, 8, 2, 128) == E_INVAL

    def test_send_malformed_words_returns_einval(self):
        hmc = init_simple()
        assert hmcsim_send(hmc, [1, 2, 3]) == E_INVAL
        assert hmcsim_send(hmc, []) == E_INVAL

    def test_send_stall_returns_estall(self):
        hmc = hmcsim_t()
        hmcsim_init(hmc, 1, 4, 16, 64, 8, 8, 2, 1)  # xbar depth 1
        hmcsim_link_config(hmc, 0, 0, hmc.sim.host_cub, 0, "host")
        _, _, _, p1 = hmcsim_build_memrequest(hmc, 0, 0, 0, "RD16", 0)
        _, _, _, p2 = hmcsim_build_memrequest(hmc, 0, 64, 1, "RD16", 0)
        assert hmcsim_send(hmc, p1) == E_OK
        assert hmcsim_send(hmc, p2) == E_STALL

    def test_recv_empty_returns_enodata(self):
        hmc = init_simple()
        ret, words = hmcsim_recv(hmc, 0, 0)
        assert ret == E_NODATA
        assert words == []

    def test_build_with_unknown_type(self):
        hmc = init_simple()
        ret, *_ = hmcsim_build_memrequest(hmc, 0, 0, 0, "RD65", 0)
        assert ret == E_INVAL

    def test_build_accepts_cmd_aliases(self):
        hmc = init_simple()
        for alias in ("RD_64", "rd64", CMD.RD64, 0x33):
            ret, _, _, words = hmcsim_build_memrequest(hmc, 0, 0, 0, alias, 0)
            assert ret == E_OK
            _, fields = hmcsim_decode_packet(words)
            assert fields["cmd"] == "RD64"

    def test_decode_garbage(self):
        ret, fields = hmcsim_decode_packet([12345])
        assert ret == E_INVAL
        assert fields == {}

    def test_uninitialised_handle_raises(self):
        hmc = hmcsim_t()
        with pytest.raises(Exception):
            _ = hmc.sim

    def test_bad_link_config(self):
        hmc = init_simple()
        assert hmcsim_link_config(hmc, 0, 0, hmc.sim.host_cub, 0, "host") == E_INVAL


class TestJTAGFacade:
    def test_reg_read_write(self):
        hmc = init_simple()
        phys = physical_index(index_by_name("EDR0"))
        assert hmcsim_jtag_reg_write(hmc, 0, phys, 0xAA) == E_OK
        ret, value = hmcsim_jtag_reg_read(hmc, 0, phys)
        assert ret == E_OK
        assert value == 0xAA

    def test_unknown_register(self):
        hmc = init_simple()
        assert hmcsim_jtag_reg_write(hmc, 0, 0x3, 1) == E_INVAL
        ret, _ = hmcsim_jtag_reg_read(hmc, 0, 0x3)
        assert ret == E_INVAL

    def test_trace_level(self):
        from repro.trace.events import EventType
        hmc = init_simple()
        assert hmcsim_trace_level(hmc, int(EventType.FIGURE5)) == E_OK
        assert hmc.sim.tracer.mask == EventType.FIGURE5
