"""End-to-end ordering-model tests.

The HMC specification's one hard ordering rule (§III.C): "all reordering
points present in a given HMC implementation must maintain the order of
a stream of packets from a specific link to a specific bank within a
vault."  Everything else may reorder.  These tests pin both halves.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.simulator import HMCSim
from repro.packets.commands import CMD
from repro.packets.packet import build_memrequest
from repro.topology.builder import build_simple


def mk_sim(**kw):
    sim = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2, **kw)
    return build_simple(sim)


def drive_to_completion(sim, expected, limit=5000):
    got = []
    cycles = 0
    while len(got) < expected and cycles < limit:
        sim.clock()
        got += sim.recv_all()
        cycles += 1
    assert len(got) == expected, f"only {len(got)}/{expected} responses"
    return got


class TestLinkToBankOrdering:
    def test_same_link_same_bank_writes_apply_in_order(self):
        """Last write wins — in injection order — for a same-link,
        same-bank stream."""
        sim = mk_sim()
        addr = 0x40
        for i in range(8):
            sim.send(build_memrequest(0, addr, i, CMD.WR64,
                                      payload=[i] * 8, link=2))
        drive_to_completion(sim, 8)
        sim.send(build_memrequest(0, addr, 100, CMD.RD64, link=2))
        drive_to_completion(sim, 1)
        # Re-read via a fresh request to observe final state.
        sim.send(build_memrequest(0, addr, 101, CMD.RD64, link=2))
        rsp = drive_to_completion(sim, 1)[0]
        assert list(rsp.payload) == [7] * 8

    def test_same_link_same_bank_responses_in_order(self):
        """Responses for a same-link same-bank read stream return in
        issue order (the stream never reorders at any point)."""
        sim = mk_sim()
        amap = sim.devices[0].amap
        # Same vault (0), same bank (0), distinct rows.
        addrs = [amap.encode(0, 0, row, 0) for row in range(12)]
        for i, a in enumerate(addrs):
            sim.send(build_memrequest(0, a, i, CMD.RD64, link=0))
        got = drive_to_completion(sim, 12)
        assert [r.tag for r in got] == list(range(12))

    def test_read_after_write_same_link_same_bank(self):
        """A read issued after a write on the same link/bank observes
        the written data (no read-overtakes-write on one stream)."""
        sim = mk_sim()
        sim.send(build_memrequest(0, 0x80, 1, CMD.WR64, payload=[9] * 8, link=1))
        sim.send(build_memrequest(0, 0x80, 2, CMD.RD64, link=1))
        got = drive_to_completion(sim, 2)
        read = next(r for r in got if r.tag == 2)
        assert list(read.payload) == [9] * 8

    @given(
        rows=st.lists(st.integers(0, 200), min_size=2, max_size=16),
        link=st.integers(0, 3),
        vault=st.integers(0, 15),
        bank=st.integers(0, 7),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stream_order_property(self, rows, link, vault, bank):
        """For ANY same-link same-bank request stream, response order
        equals issue order."""
        sim = mk_sim()
        amap = sim.devices[0].amap
        for i, row in enumerate(rows):
            addr = amap.encode(vault, bank, row, 0)
            sim.send(build_memrequest(0, addr, i, CMD.RD16, link=link))
        got = drive_to_completion(sim, len(rows))
        assert [r.tag for r in got] == list(range(len(rows)))


class TestWeakOrderingElsewhere:
    def test_different_banks_may_reorder(self):
        """Weak ordering exists: a short request behind a bank-blocked
        one can complete first when they target different banks."""
        sim = mk_sim()
        amap = sim.devices[0].amap
        # Saturate bank 0 of vault 0 so its stream backs up.
        for i in range(6):
            sim.send(build_memrequest(0, amap.encode(0, 0, i, 0), i, CMD.RD64, link=0))
        # Then one request to bank 1 on the same link.
        sim.send(build_memrequest(0, amap.encode(0, 1, 0, 0), 99, CMD.RD64, link=0))
        got = drive_to_completion(sim, 7)
        tags = [r.tag for r in got]
        # Tag 99 must NOT be forced to be last: the bank-1 request may
        # pass blocked bank-0 traffic.
        assert tags.index(99) < len(tags) - 1

    def test_cross_link_streams_have_no_mutual_order(self):
        """Two links writing the same address have no defined order —
        the simulation must complete both without error, whichever wins."""
        sim = mk_sim()
        sim.send(build_memrequest(0, 0x40, 1, CMD.WR64, payload=[111] * 8, link=0))
        sim.send(build_memrequest(0, 0x40, 2, CMD.WR64, payload=[222] * 8, link=1))
        drive_to_completion(sim, 2)
        sim.send(build_memrequest(0, 0x40, 3, CMD.RD64, link=0))
        rsp = drive_to_completion(sim, 1)[0]
        assert list(rsp.payload) in ([111] * 8, [222] * 8)
