"""Unit tests for device/sim configuration (repro.core.config)."""

import pytest

from repro.core.config import (
    DeviceConfig,
    PAPER_CONFIGS,
    PAPER_TABLE1_CYCLES,
    PAPER_TABLE1_REQUESTS,
    SimConfig,
    paper_config_pairs,
)
from repro.core.errors import InitError

GB = 1 << 30


class TestDeviceConfig:
    def test_defaults_are_valid_4link(self):
        c = DeviceConfig()
        assert c.num_links == 4
        assert c.num_vaults == 16
        assert c.num_quads == 4
        assert c.capacity_bytes == 2 * GB

    def test_vaults_default_to_4_per_link(self):
        assert DeviceConfig(num_links=8).num_vaults == 32

    def test_explicit_vault_override(self):
        c = DeviceConfig(num_links=4, num_vaults=32)
        assert c.num_quads == 8

    @pytest.mark.parametrize("bad_links", [0, 2, 6, 16])
    def test_link_count_must_be_4_or_8(self, bad_links):
        with pytest.raises(InitError):
            DeviceConfig(num_links=bad_links)

    @pytest.mark.parametrize("bad_banks", [0, 4, 12, 32])
    def test_bank_count_must_be_8_or_16(self, bad_banks):
        with pytest.raises(InitError):
            DeviceConfig(num_banks=bad_banks)

    def test_vaults_must_be_multiple_of_quad(self):
        with pytest.raises(InitError):
            DeviceConfig(num_vaults=18)

    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(InitError):
            DeviceConfig(capacity=3)

    def test_queue_depths_positive(self):
        with pytest.raises(InitError):
            DeviceConfig(queue_depth=0)
        with pytest.raises(InitError):
            DeviceConfig(xbar_depth=-1)

    def test_link_rates(self):
        """Paper III.A: 4-link at 10/12.5/15 Gbps, 8-link at 10 Gbps."""
        DeviceConfig(num_links=4, link_rate_gbps=15.0)
        DeviceConfig(num_links=8, link_rate_gbps=10.0)
        with pytest.raises(InitError):
            DeviceConfig(num_links=8, link_rate_gbps=15.0)
        with pytest.raises(InitError):
            DeviceConfig(num_links=4, link_rate_gbps=11.0)

    def test_block_size_options(self):
        for bs in (32, 64, 128):
            DeviceConfig(block_size=bs)
        with pytest.raises(InitError):
            DeviceConfig(block_size=256)

    def test_bank_bytes(self):
        c = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        assert c.bank_bytes == 2 * GB // (16 * 8)

    def test_address_bits(self):
        assert DeviceConfig(num_links=4).address_bits == 32
        assert DeviceConfig(num_links=8).address_bits == 33

    def test_label_matches_table1_format(self):
        c = DeviceConfig(num_links=4, num_banks=8, capacity=2)
        assert c.label() == "4-Link; 8-Bank; 2GB"

    def test_with_creates_modified_copy(self):
        c = DeviceConfig()
        d = c.with_(num_banks=16, capacity=4)
        assert d.num_banks == 16
        assert c.num_banks == 8

    def test_frozen(self):
        c = DeviceConfig()
        with pytest.raises(Exception):
            c.num_links = 8


class TestSimConfig:
    def test_host_cub_is_num_devs_plus_one(self):
        """Paper V.B: hosts use cube id num_devices + 1."""
        assert SimConfig(num_devs=1).host_cub == 2
        assert SimConfig(num_devs=4).host_cub == 5

    def test_at_most_seven_devices(self):
        SimConfig(num_devs=7)
        with pytest.raises(InitError):
            SimConfig(num_devs=8)

    def test_positive_devices(self):
        with pytest.raises(InitError):
            SimConfig(num_devs=0)

    @pytest.mark.parametrize(
        "field,bad",
        [
            ("conflict_window", 0),
            ("bank_busy_cycles", -1),
            ("xbar_moves_per_cycle", 0),
            ("vault_issue_width", 0),
            ("link_token_flits", -1),
            ("queue_timeout", -1),
        ],
    )
    def test_engine_knob_validation(self, field, bad):
        with pytest.raises(InitError):
            SimConfig(**{field: bad})

    def test_with_(self):
        c = SimConfig()
        assert c.with_(num_devs=3).num_devs == 3


class TestPaperConfigs:
    def test_four_rows(self):
        assert len(PAPER_CONFIGS) == 4
        assert len(PAPER_TABLE1_CYCLES) == 4

    def test_labels_self_consistent(self):
        for label, cfg in PAPER_CONFIGS.items():
            assert cfg.label() == label

    def test_queue_depths_match_paper(self):
        """Paper VI.A: 128 crossbar slots, 64 vault slots."""
        for cfg in PAPER_CONFIGS.values():
            assert cfg.xbar_depth == 128
            assert cfg.queue_depth == 64

    def test_paper_cycle_values(self):
        assert PAPER_TABLE1_CYCLES["4-Link; 8-Bank; 2GB"] == 3_404_553
        assert PAPER_TABLE1_CYCLES["8-Link; 16-Bank; 8GB"] == 879_183

    def test_request_count(self):
        assert PAPER_TABLE1_REQUESTS == 1 << 25

    def test_capacity_scales_with_structure(self):
        """Capacity = vaults x banks x bank size with constant 16 MB banks."""
        for cfg in PAPER_CONFIGS.values():
            assert cfg.bank_bytes == 16 * (1 << 20)

    def test_pairs_order(self):
        labels = [l for l, _ in paper_config_pairs()]
        assert labels[0] == "4-Link; 8-Bank; 2GB"
        assert labels[-1] == "8-Link; 16-Bank; 8GB"
