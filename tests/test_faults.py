"""Tests for fault injection and link retry (repro.faults)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import HMCError
from repro.core.simulator import HMCSim
from repro.faults.injector import BitErrorInjector, ScheduledInjector
from repro.faults.link_model import FaultKind, LinkFaultModel
from repro.faults.retry import LinkRetryExhausted, RetrySession, RetryStats
from repro.packets.commands import CMD
from repro.packets.packet import Packet, build_memrequest
from repro.topology.builder import build_simple


class TestBitErrorInjector:
    def test_zero_ber_is_transparent(self):
        inj = BitErrorInjector(ber=0.0)
        words = [1, 2, 3]
        assert inj.corrupt(words) == words
        assert inj.corrupted_transmissions == 0

    def test_ber_one_corrupts_everything(self):
        inj = BitErrorInjector(ber=1.0)
        out = inj.corrupt([0, 0])
        assert out == [(1 << 64) - 1] * 2
        assert inj.bits_flipped == 128

    def test_moderate_ber_statistics(self):
        inj = BitErrorInjector(ber=0.01, seed=7)
        for _ in range(200):
            inj.corrupt([0] * 4)  # 256 bits/transmission
        # E[corrupted fraction] = 1-(1-0.01)^256 ~ 0.92
        assert inj.corrupted_transmissions > 100
        assert inj.transmissions == 200

    def test_deterministic_per_seed(self):
        a = BitErrorInjector(ber=0.05, seed=3)
        b = BitErrorInjector(ber=0.05, seed=3)
        for _ in range(20):
            assert a.corrupt([7, 8, 9]) == b.corrupt([7, 8, 9])

    def test_does_not_mutate_input(self):
        inj = BitErrorInjector(ber=1.0)
        words = [5]
        inj.corrupt(words)
        assert words == [5]

    def test_validation(self):
        with pytest.raises(ValueError):
            BitErrorInjector(ber=-0.1)
        with pytest.raises(ValueError):
            BitErrorInjector(ber=1.5)


class TestScheduledInjector:
    def test_corrupts_only_scheduled_ordinals(self):
        inj = ScheduledInjector({1}, bit=0)
        clean = [0, 0, 0]
        assert inj.corrupt(clean) == clean          # ordinal 0
        assert inj.corrupt(clean) != clean          # ordinal 1
        assert inj.corrupt(clean) == clean          # ordinal 2
        assert inj.corrupted_transmissions == 1

    def test_remaining(self):
        inj = ScheduledInjector({0, 5})
        assert inj.remaining == 2
        inj.corrupt([1])
        assert inj.remaining == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ScheduledInjector({-1})
        with pytest.raises(ValueError):
            ScheduledInjector({0}, bit=64)

    def test_ordinals_are_zero_based(self):
        """Regression: ordinal 0 means the *first* transmission.

        ``ScheduledInjector({n})`` corrupts the (n+1)-th call to
        ``corrupt`` — the scheduled ordinals count from zero, exactly
        like ``transmissions`` before the call.
        """
        inj = ScheduledInjector({0}, bit=0)
        assert inj.corrupt([8]) == [9]              # ordinal 0 = first call
        assert inj.corrupt([8]) == [8]
        inj = ScheduledInjector({2}, bit=0)
        assert [inj.corrupt([8]) for _ in range(4)] == [[8], [8], [9], [8]]
        assert inj.remaining == 0


class TestLinkFaultModel:
    def test_clean_link(self):
        m = LinkFaultModel()
        kind, words = m.transmit([1, 2])
        assert kind is FaultKind.CLEAN
        assert words == [1, 2]
        assert m.fault_rate == 0.0

    def test_always_drop(self):
        m = LinkFaultModel(drop_rate=1.0)
        kind, words = m.transmit([1])
        assert kind is FaultKind.DROP
        assert words is None
        assert m.drops == 1

    def test_corrupt_via_scheduled_injector(self):
        m = LinkFaultModel(injector=ScheduledInjector({0}))
        kind, words = m.transmit([0, 0, 0])
        assert kind is FaultKind.CORRUPT
        assert words != [0, 0, 0]
        assert m.corruptions == 1

    def test_stats(self):
        m = LinkFaultModel(drop_rate=1.0)
        m.transmit([1])
        s = m.stats()
        assert s["drops"] == 1
        assert s["fault_rate"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFaultModel(drop_rate=2.0)


class TestRetrySession:
    def pkt(self, tag=1):
        return build_memrequest(0, 0x40, tag, CMD.WR64, payload=list(range(8)))

    def test_clean_delivery_is_bit_identical(self):
        s = RetrySession(LinkFaultModel())
        src = self.pkt()
        out = s.transmit(src)
        assert out.cmd is src.cmd
        assert out.payload == src.payload
        assert out.tag == src.tag
        assert s.stats.transmissions == 1
        assert s.stats.crc_failures == 0

    def test_corruption_is_detected_and_replayed(self):
        s = RetrySession(LinkFaultModel(injector=ScheduledInjector({0})))
        out = s.transmit(self.pkt())
        assert out.payload == tuple(range(8))
        assert s.stats.transmissions == 2       # original + replay
        assert s.stats.crc_failures == 1
        assert s.stats.irtry_events == 1
        assert s.stats.recovered == 1
        assert s.stats.recovery_cycles == s.retry_delay

    def test_drop_is_replayed(self):
        class DropOnce:
            """Stub model: drop the first transmission, then go clean."""

            def __init__(self):
                self.calls = 0

            def transmit(self, words):
                self.calls += 1
                if self.calls == 1:
                    return (FaultKind.DROP, None)
                return (FaultKind.CLEAN, list(words))

        s = RetrySession(DropOnce(), retry_delay=3)
        out = s.transmit(self.pkt(tag=9))
        assert out.tag == 9
        assert s.stats.drops == 1
        assert s.stats.recovered == 1
        assert s.stats.recovery_cycles == 3

    def test_exhaustion_raises_and_counts(self):
        s = RetrySession(LinkFaultModel(drop_rate=1.0), max_retries=3)
        with pytest.raises(LinkRetryExhausted):
            s.transmit(self.pkt())
        assert s.stats.failed == 1
        assert s.stats.transmissions == 4  # 1 + 3 replays

    def test_multiple_scheduled_failures_before_success(self):
        s = RetrySession(
            LinkFaultModel(injector=ScheduledInjector({0, 1, 2})),
            max_retries=5, retry_delay=7,
        )
        out = s.transmit(self.pkt())
        assert out.tag == 1
        assert s.stats.transmissions == 4
        assert s.stats.recovery_cycles == 21

    def test_stats_dataclass(self):
        s = RetryStats(packets=2, failed=1)
        d = s.as_dict()
        assert d["packets"] == 2 and d["failed"] == 1

    @given(ber=st.sampled_from([1e-4, 1e-3, 1e-2]), seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_no_corrupted_packet_is_ever_accepted(self, ber, seed):
        """The invariant the CRC exists for: whatever the BER, a packet
        that arrives does so bit-identically — or not at all (retry
        exhaustion on a hopelessly noisy link is a legal outcome; at
        BER 1e-2 a 288-byte packet is clean with probability ~1e-10)."""
        s = RetrySession(LinkFaultModel(ber=ber, seed=seed), max_retries=64)
        src = build_memrequest(1, 0x1230, 42, CMD.WR128, payload=list(range(16)))
        try:
            out = s.transmit(src)
        except LinkRetryExhausted:
            assert s.stats.failed == 1
            return
        assert out.payload == src.payload
        assert (out.cub, out.tag, out.addr) == (src.cub, src.tag, src.addr)
        # Every detected failure was an IRTRY exchange; nothing silent.
        assert s.stats.irtry_events == s.stats.crc_failures + s.stats.drops


class TestSimulatorIntegration:
    def _sim(self):
        return build_simple(
            HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2),
            host_links=1,
        )

    def test_attach_requires_host_link(self):
        sim = self._sim()
        from repro.core.errors import TopologyError
        with pytest.raises(TopologyError):
            sim.attach_fault_model(0, 3, LinkFaultModel())

    def test_faulty_link_traffic_recovers_transparently(self):
        sim = self._sim()
        session = sim.attach_fault_model(
            0, 0, LinkFaultModel(injector=ScheduledInjector({0, 3})))
        for i in range(6):
            sim.send(build_memrequest(0, i * 64, i, CMD.RD64, link=0))
        sim.clock(20)
        tags = sorted(r.tag for r in sim.recv_all())
        assert tags == [0, 1, 2, 3, 4, 5]       # nothing lost
        assert session.stats.crc_failures == 2
        assert session.stats.recovered == 2
        assert sim.fault_stats()[(0, 0)]["irtry_events"] == 2

    def test_dead_link_raises_hmc_error(self):
        sim = self._sim()
        sim.attach_fault_model(0, 0, LinkFaultModel(drop_rate=1.0), max_retries=2)
        with pytest.raises(HMCError):
            sim.send(build_memrequest(0, 0, 0, CMD.RD16, link=0))
        assert sim.link_errors_unrecovered == 1

    def test_detach_restores_clean_link(self):
        sim = self._sim()
        sim.attach_fault_model(0, 0, LinkFaultModel(drop_rate=1.0), max_retries=0)
        sim.detach_fault_model(0, 0)
        sim.send(build_memrequest(0, 0, 7, CMD.RD16, link=0))
        sim.clock(10)
        assert sim.recv().tag == 7

    def test_write_data_survives_noisy_link(self):
        """End-to-end data integrity through a 1e-3-BER link."""
        sim = self._sim()
        sim.attach_fault_model(0, 0, LinkFaultModel(ber=1e-3, seed=5),
                               max_retries=64)
        data = [0xABCD + i for i in range(8)]
        sim.send(build_memrequest(0, 0x4000, 1, CMD.WR64, payload=data, link=0))
        sim.clock(10)
        sim.recv()
        sim.send(build_memrequest(0, 0x4000, 2, CMD.RD64, link=0))
        sim.clock(10)
        assert list(sim.recv().payload) == data
