"""Tests for the barrel core (repro.cpu.core) and kernels."""

import pytest

from repro.core.simulator import HMCSim
from repro.cpu.assembler import assemble
from repro.cpu.core import GoblinCore, ThreadState
from repro.cpu.programs import (
    fib_kernel,
    gups_kernel,
    memcpy_kernel,
    memset_kernel,
    partitioned,
    pointer_walk_kernel,
    vector_sum_kernel,
)
from repro.topology.builder import build_simple


def mk_core(program, num_threads=1):
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
    if isinstance(program, str):
        program = assemble(program)
    return GoblinCore(sim, program, num_threads=num_threads)


class TestRegisterSemantics:
    def test_r0_reads_zero_and_ignores_writes(self):
        core = mk_core("li r0, 99\nmov r1, r0\nhalt\n")
        core.run()
        assert core.threads[0].regs[0] == 0
        assert core.threads[0].read(1) == 0

    def test_arithmetic_program(self):
        core = mk_core("""
            li  r1, 6
            li  r2, 7
            mul r3, r1, r2
            addi r3, r3, 600
            halt
        """)
        core.run()
        assert core.threads[0].read(3) == 642

    def test_branch_loop(self):
        core = mk_core("""
            li r1, 5
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        core.run()
        assert core.threads[0].read(2) == 15

    def test_blt_signed(self):
        core = mk_core("""
            li r1, -1
            li r2, 1
            blt r1, r2, neg
            li r3, 0
            halt
        neg:
            li r3, 1
            halt
        """)
        core.run()
        assert core.threads[0].read(3) == 1


class TestMemoryOps:
    def test_store_then_load(self):
        core = mk_core("""
            li r1, 0x1000
            li r2, 0xBEEF
            st r2, 0(r1)
            ld r3, 0(r1)
            halt
        """)
        core.run()
        assert core.threads[0].read(3) == 0xBEEF
        assert core.peek_word(0x1000) == 0xBEEF

    def test_load_upper_half_of_atom(self):
        core = mk_core("""
            li r1, 0x2000
            li r2, 0x11
            li r3, 0x22
            st r2, 0(r1)
            st r3, 8(r1)
            ld r4, 8(r1)
            halt
        """)
        core.run()
        assert core.threads[0].read(4) == 0x22
        assert core.peek(0x2000) == [0x11, 0x22]

    def test_amoadd_returns_old_value(self):
        core = mk_core("""
            li r1, 0x3000
            li r2, 100
            st r2, 0(r1)
            li r3, 5
            amoadd r4, 0(r1), r3
            ld r5, 0(r1)
            halt
        """)
        core.run()
        t = core.threads[0]
        assert t.read(4) == 100   # old value
        assert t.read(5) == 105   # updated

    def test_unaligned_access_faults(self):
        core = mk_core("li r1, 0x1001\nld r2, 0(r1)\nhalt\n")
        res = core.run()
        assert core.threads[0].state is ThreadState.FAULTED
        assert "unaligned" in core.threads[0].fault
        assert len(res.faulted) == 1

    def test_out_of_range_access_faults(self):
        core = mk_core(f"li r1, {2 << 30}\nld r2, 0(r1)\nhalt\n")
        core.run()
        assert core.threads[0].state is ThreadState.FAULTED

    def test_pc_off_end_faults(self):
        core = mk_core("nop\n")
        core.run()
        assert core.threads[0].state is ThreadState.FAULTED


class TestKernels:
    def test_fib(self):
        core = mk_core(fib_kernel(10, 0x100))
        core.run()
        assert core.peek_word(0x100) == 55

    def test_memset(self):
        core = mk_core(memset_kernel(0x1000, 16, 7))
        res = core.run()
        for i in range(16):
            assert core.peek_word(0x1000 + 8 * i) == 7
        assert res.stores == 16

    def test_vector_sum(self):
        core = mk_core(vector_sum_kernel(0x2000, 8, 0x100))
        core.poke(0x2000, [i + 1 for i in range(8)])
        core.run()
        assert core.peek_word(0x100) == 36

    def test_memcpy(self):
        core = mk_core(memcpy_kernel(0x1000, 0x8000, 8))
        core.poke(0x1000, [0xD00D + i for i in range(8)])
        core.run()
        for i in range(8):
            assert core.peek_word(0x8000 + 8 * i) == 0xD00D + i

    def test_gups_total_mass(self):
        """Fetch-and-adds deposit the loop counter each time: total mass
        added equals sum(updates..1)."""
        updates = 16
        core = mk_core(gups_kernel(0x0, table_words=64, updates=updates, seed=3))
        res = core.run()
        total = sum(core.peek_word(a) for a in range(0, 64 * 8, 8))
        assert total == sum(range(1, updates + 1))
        assert res.amos == updates

    def test_pointer_walk(self):
        core = mk_core(pointer_walk_kernel(0x0, hops=4))
        # Build a 4-node cycle: 0 -> 0x40 -> 0x80 -> 0xC0 -> 0.
        chain = [0x40, 0x80, 0xC0, 0x0]
        for node, nxt in zip((0x0, 0x40, 0x80, 0xC0), chain):
            core.poke(node, [nxt, 0])
        core.run()
        assert core.threads[0].read(1) == 0x0  # back to the start


class TestMultithreading:
    def test_partitioned_memset(self):
        programs = partitioned(
            lambda s, c: memset_kernel(0x4000 + s * 8, c, 9), 4, 64)
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        core = GoblinCore(sim, programs)
        res = core.run()
        assert len(res.threads) == 4
        for i in range(64):
            assert core.peek_word(0x4000 + 8 * i) == 9

    def test_threads_hide_memory_latency(self):
        """More hardware threads raise IPC on a load-heavy kernel —
        the Goblin-Core64 premise."""
        def ipc(threads):
            # Each thread sums its slice into a distinct result slot.
            programs = [
                assemble(vector_sum_kernel(0x10000 + (128 // threads) * 8 * t,
                                           128 // threads,
                                           0x100 + 16 * t))
                for t in range(threads)
            ]
            sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                      capacity=2))
            core = GoblinCore(sim, programs)
            return core.run().ipc

        assert ipc(8) > ipc(1) * 1.5

    def test_concurrent_amoadds_sum_correctly(self):
        """All threads hammer one counter with amoadd: atomicity means
        no lost updates."""
        prog = assemble("""
            li r1, 0x100
            li r2, 16
            li r3, 1
        loop:
            beq r2, r0, done
            amoadd r4, 0(r1), r3
            addi r2, r2, -1
            jmp loop
        done:
            halt
        """)
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        core = GoblinCore(sim, prog, num_threads=4)
        core.run()
        assert core.peek_word(0x100) == 4 * 16

    def test_result_statistics(self):
        core = mk_core(memset_kernel(0x1000, 4, 1), num_threads=2)
        res = core.run()
        assert res.instructions > 0
        assert res.stores == 8  # 4 per thread x 2 threads
        assert 0 < res.ipc <= 1.0
