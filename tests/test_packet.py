"""Unit tests for packet objects and bit packing (repro.packets.packet)."""

import pytest

from repro.packets.commands import CMD, request_flits
from repro.packets.packet import (
    ADRS_BITS,
    ErrStat,
    MAX_ADRS,
    MAX_CUB,
    MAX_TAG,
    Packet,
    PacketDecodeError,
    build_memrequest,
    build_response,
    decode_header,
    decode_tail,
    encode_request_header,
    encode_request_tail,
    encode_response_header,
    encode_response_tail,
)


class TestHeaderPacking:
    def test_request_header_round_trip(self):
        w = encode_request_header(CMD.RD64, cub=3, tag=257, addr=0x2_FFFF_FFF0, lng=1)
        h = decode_header(w)
        assert h["cmd"] is CMD.RD64
        assert h["cub"] == 3
        assert h["tag"] == 257
        assert h["addr"] == 0x2_FFFF_FFF0
        assert h["lng"] == h["dln"] == 1

    def test_address_field_is_34_bits(self):
        assert ADRS_BITS == 34
        assert MAX_ADRS == (1 << 34) - 1
        w = encode_request_header(CMD.RD16, 0, 0, MAX_ADRS, 1)
        assert decode_header(w)["addr"] == MAX_ADRS

    def test_tag_field_is_9_bits(self):
        assert MAX_TAG == 511
        with pytest.raises(ValueError):
            encode_request_header(CMD.RD16, 0, 512, 0, 1)

    def test_cub_field_is_3_bits(self):
        assert MAX_CUB == 7
        with pytest.raises(ValueError):
            encode_request_header(CMD.RD16, 8, 0, 0, 1)

    def test_lng_bounds(self):
        with pytest.raises(ValueError):
            encode_request_header(CMD.RD16, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            encode_request_header(CMD.RD16, 0, 0, 0, 10)

    def test_response_header_round_trip(self):
        w = encode_response_header(CMD.RD_RS, cub=2, tag=33, slid=5, lng=5)
        h = decode_header(w)
        assert h["cmd"] is CMD.RD_RS
        assert h["slid"] == 5
        assert h["tag"] == 33
        assert h["addr"] == 0  # responses carry no address

    def test_unknown_cmd_raises(self):
        with pytest.raises(PacketDecodeError):
            decode_header(0x3F)  # CMD=0x3F unassigned


class TestTailPacking:
    def test_request_tail_round_trip(self):
        w = encode_request_tail(rrp=0xAB, frp=0xCD, seq=5, pb=1, slid=3, rtc=17, crc=0xDEADBEEF)
        t = decode_tail(w, response=False)
        assert t["rrp"] == 0xAB
        assert t["frp"] == 0xCD
        assert t["seq"] == 5
        assert t["pb"] == 1
        assert t["slid"] == 3
        assert t["rtc"] == 17
        assert t["crc"] == 0xDEADBEEF

    def test_response_tail_round_trip(self):
        w = encode_response_tail(rrp=1, frp=2, seq=3, dinv=1, errstat=int(ErrStat.UNROUTABLE), rtc=9, crc=42)
        t = decode_tail(w, response=True)
        assert t["dinv"] == 1
        assert t["errstat"] == int(ErrStat.UNROUTABLE)
        assert t["rtc"] == 9
        assert t["crc"] == 42

    def test_field_range_enforcement(self):
        with pytest.raises(ValueError):
            encode_request_tail(rrp=256)
        with pytest.raises(ValueError):
            encode_request_tail(seq=8)
        with pytest.raises(ValueError):
            encode_response_tail(errstat=128)


class TestPacketObject:
    def test_payload_must_match_command_flits(self):
        with pytest.raises(ValueError):
            Packet(cmd=CMD.WR64, payload=(1, 2))  # needs 8 words

    def test_payload_must_be_whole_flits(self):
        with pytest.raises(ValueError):
            Packet(cmd=CMD.WR16, payload=(1,))

    def test_flow_packet_is_one_flit(self):
        assert Packet(cmd=CMD.NULL).num_flits == 1

    def test_read_request_is_one_flit_any_size(self):
        for c in (CMD.RD16, CMD.RD64, CMD.RD128):
            assert Packet(cmd=c).num_flits == 1

    def test_write_flits(self):
        pkt = Packet(cmd=CMD.WR64, payload=tuple(range(8)))
        assert pkt.num_flits == 5
        assert pkt.data_bytes == 64

    def test_serials_are_monotonic(self):
        a = Packet(cmd=CMD.RD16)
        b = Packet(cmd=CMD.RD16)
        assert b.serial > a.serial

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            Packet(cmd=CMD.RD16, tag=512)
        with pytest.raises(ValueError):
            Packet(cmd=CMD.RD16, addr=1 << 34)
        with pytest.raises(ValueError):
            Packet(cmd=CMD.RD16, cub=8)


class TestEncodeDecode:
    def test_word_count_is_two_per_flit(self):
        pkt = Packet(cmd=CMD.WR32, payload=(1, 2, 3, 4))
        words = pkt.encode()
        assert len(words) == 2 * pkt.num_flits

    def test_round_trip_request(self):
        pkt = build_memrequest(cub=1, addr=0xABC0, tag=7, cmd=CMD.WR64,
                               payload=list(range(8)), link=2)
        out = Packet.decode(pkt.encode())
        assert out.cmd is pkt.cmd
        assert out.addr == pkt.addr
        assert out.tag == pkt.tag
        assert out.cub == pkt.cub
        assert out.payload == pkt.payload
        assert out.slid == 2

    def test_round_trip_response(self):
        req = build_memrequest(0, 0x40, 9, CMD.RD32, link=1)
        rsp = build_response(req, data=[11, 22, 33, 44])
        out = Packet.decode(rsp.encode())
        assert out.cmd is CMD.RD_RS
        assert out.tag == 9
        assert out.slid == 1
        assert out.payload == (11, 22, 33, 44)

    def test_crc_is_checked(self):
        words = build_memrequest(0, 0, 0, CMD.RD16).encode()
        words[0] ^= 1 << 30  # corrupt a header bit
        with pytest.raises(PacketDecodeError):
            Packet.decode(words)

    def test_crc_check_can_be_skipped(self):
        words = build_memrequest(0, 0x10, 0, CMD.RD16).encode()
        words[-1] ^= 1 << 63  # corrupt the CRC itself
        pkt = Packet.decode(words, check_crc=False)
        assert pkt.cmd is CMD.RD16

    def test_odd_word_count_rejected(self):
        with pytest.raises(PacketDecodeError):
            Packet.decode([1, 2, 3])

    def test_lng_mismatch_rejected(self):
        # Hand-build a header claiming 2 FLITs but provide 1.
        head = encode_request_header(CMD.WR16, 0, 0, 0, 2)
        tail = encode_request_tail()
        with pytest.raises(PacketDecodeError):
            Packet.decode([head, tail], check_crc=False)

    def test_lng_dln_mismatch_rejected(self):
        head = encode_request_header(CMD.RD16, 0, 0, 0, 1)
        # Corrupt DLN only (bits 11..14).
        head ^= 1 << 11
        tail = encode_request_tail()
        with pytest.raises(PacketDecodeError):
            Packet.decode([head, tail], check_crc=False)


class TestBuilders:
    def test_build_memrequest_pads_payload(self):
        pkt = build_memrequest(0, 0, 0, CMD.WR64, payload=[1, 2])
        assert len(pkt.payload) == 8
        assert pkt.payload[:2] == (1, 2)
        assert all(w == 0 for w in pkt.payload[2:])

    def test_build_memrequest_truncates_payload(self):
        pkt = build_memrequest(0, 0, 0, CMD.WR16, payload=list(range(10)))
        assert pkt.payload == (0, 1)

    def test_build_memrequest_rejects_response_cmd(self):
        with pytest.raises(ValueError):
            build_memrequest(0, 0, 0, CMD.RD_RS)

    def test_build_response_sizes(self):
        req = build_memrequest(0, 0, 3, CMD.RD64)
        rsp = build_response(req, data=list(range(8)))
        assert rsp.num_flits == 5
        wr = build_memrequest(0, 0, 4, CMD.WR64, payload=[0] * 8)
        assert build_response(wr).num_flits == 1

    def test_build_response_posted_raises(self):
        req = build_memrequest(0, 0, 0, CMD.P_WR64)
        with pytest.raises(ValueError):
            build_response(req)

    def test_error_response(self):
        req = build_memrequest(2, 0x99, 5, CMD.RD16, link=3)
        rsp = build_response(req, errstat=ErrStat.UNROUTABLE)
        assert rsp.cmd is CMD.ERROR
        assert rsp.errstat is ErrStat.UNROUTABLE
        assert rsp.dinv == 1
        assert rsp.tag == 5
        assert rsp.num_flits == 1

    def test_error_response_even_for_posted(self):
        # Error generation is allowed for posted commands too (callers
        # guard); ERROR carries the tag regardless.
        req = build_memrequest(0, 0, 0, CMD.P_WR16, payload=[1, 2])
        rsp = build_response(req, errstat=ErrStat.INVALID_ADDRESS)
        assert rsp.cmd is CMD.ERROR


@pytest.mark.parametrize("cmd", [c for c in CMD if c.name not in
                                 ("RD_RS", "WR_RS", "MD_RD_RS", "MD_WR_RS", "ERROR")])
def test_every_request_command_encodes_and_decodes(cmd):
    """Paper IV.5: all device packet variations are supported."""
    flits = request_flits(cmd)
    payload = list(range((flits - 1) * 2))
    pkt = build_memrequest(cub=1, addr=0x1230, tag=100, cmd=cmd, payload=payload, link=1)
    out = Packet.decode(pkt.encode())
    assert out.cmd is cmd
    assert out.num_flits == flits
