"""Kitchen-sink integration: every optional feature enabled at once.

Individually-tested features can still conflict when composed; these
tests run the simulator with everything switched on simultaneously —
open-row timing, refresh, rotating arbitration, flow-control tokens,
zombie expiry, physical locality penalty, link faults with retry,
tracing to multiple sinks, chained topologies — and verify conservation
and data integrity still hold.
"""

import io

import pytest

from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.faults.injector import ScheduledInjector
from repro.faults.link_model import LinkFaultModel
from repro.host.host import Host, LinkPolicy
from repro.packets.commands import CMD
from repro.topology.builder import build_ring, build_simple
from repro.trace.binfmt import BinarySink, parse_binary
from repro.trace.events import EventType
from repro.trace.stats import TraceStats
from repro.trace.tracer import CountingSink, MemorySink, StatsSink
from repro.workloads.random_access import RandomAccessConfig, random_access_requests


def everything_on(num_devs=1, **overrides):
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2,
                          queue_depth=16, xbar_depth=32)
    kw = dict(
        device=device,
        num_devs=num_devs,
        row_policy="open",
        row_hit_cycles=3,
        row_miss_cycles=14,
        refresh_interval=64,
        refresh_cycles=6,
        xbar_arbitration="rotating",
        link_token_flits=256,
        queue_timeout=5000,
        nonlocal_penalty_cycles=2,
    )
    kw.update(overrides)
    return HMCSim(SimConfig(**kw))


class TestAllFeaturesTogether:
    def test_random_traffic_conserves(self):
        sim = build_simple(everything_on())
        stats = TraceStats(num_vaults=16)
        sim.set_trace_mask(EventType.STANDARD)
        sim.add_trace_sink(StatsSink(stats))
        sim.add_trace_sink(CountingSink())
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=1024)
        res = host.run(random_access_requests(2 << 30, cfg))
        assert res.responses_received == 1024
        assert res.errors_received == 0
        assert sim.pending_packets == 0
        assert sim.dropped_responses == 0
        fig = stats.figure5_series()
        assert fig["read_requests"].total + fig["write_requests"].total == 1024

    def test_data_integrity_with_everything_on(self):
        sim = build_simple(everything_on(), host_links=1)
        sim.attach_fault_model(
            0, 0, LinkFaultModel(injector=ScheduledInjector(set(range(0, 64, 7)))),
            max_retries=16)
        host = Host(sim, policy=LinkPolicy.LOCALITY)
        writes = [(CMD.WR64, i * 64, [i * 3 + k for k in range(8)])
                  for i in range(64)]
        host.run(writes)
        dev = sim.devices[0]
        for i in (0, 13, 63):
            d = dev.amap.decode(i * 64)
            rel = d.dram * dev.amap.block_size + d.offset
            assert dev.vaults[d.vault].banks[d.bank].read(rel, 64) == [
                i * 3 + k for k in range(8)]

    def test_chained_ring_with_everything_on(self):
        sim = build_ring(everything_on(num_devs=4))
        host = Host(sim)
        streams = []
        for cub in range(4):
            streams += [(CMD.WR16, 0x40 * (i + 1), [cub, i]) for i in range(16)]
            # interleave reads of earlier writes on the same cube
        res = host.run(streams, cub=2)
        assert res.responses_received == len(streams)
        assert res.errors_received == 0

    def test_binary_trace_round_trip_under_load(self):
        sim = build_simple(everything_on())
        buf = io.BytesIO()
        sim.set_trace_mask(EventType.FIGURE5)
        sink = sim.add_trace_sink(BinarySink(buf, num_vaults=16))
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=256)
        host.run(random_access_requests(2 << 30, cfg))
        buf.seek(0)
        events = list(parse_binary(buf))
        assert len(events) == sink.records
        reads = sum(1 for e in events if e.type is EventType.RQST_READ)
        writes = sum(1 for e in events if e.type is EventType.RQST_WRITE)
        assert reads + writes == 256

    def test_checkpoint_with_everything_on(self):
        from repro.core.checkpoint import restore, snapshot
        sim = build_simple(everything_on())
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=128)
        host.run(random_access_requests(2 << 30, cfg))
        sim2 = restore(snapshot(sim))
        # The restored sim continues cleanly with all features live.
        host2 = Host(sim2)
        res = host2.run([(CMD.RD64, i * 64, None) for i in range(64)])
        assert res.responses_received == 64

    def test_determinism_with_everything_on(self):
        def run():
            sim = build_simple(everything_on())
            host = Host(sim)
            cfg = RandomAccessConfig(num_requests=512, seed=7)
            res = host.run(random_access_requests(2 << 30, cfg))
            return (res.cycles, sim.stats())

        assert run() == run()

    def test_core_on_kitchen_sink_memory(self):
        from repro.cpu.assembler import assemble
        from repro.cpu.core import GoblinCore
        from repro.cpu.programs import vector_sum_kernel

        sim = build_simple(everything_on())
        core = GoblinCore(sim, assemble(vector_sum_kernel(0x8000, 32, 0x100)),
                          num_threads=1)
        core.poke(0x8000, [2] * 32)
        res = core.run()
        assert not res.faulted
        assert core.peek_word(0x100) == 64
