"""The rack-scale memory service: admission, sessions, accounting.

Covers the service subsystem's contracts end to end:

* admission units — token buckets, the G/D/1 fabric port, and the
  priority lease queue;
* the mixed-tenant scenario generator (deterministic profiles);
* full service runs — billing consistency (per-tenant integers sum
  exactly to pool counters), 128-tenant scale, priority ordering,
  overload shedding, and failure containment under forced link death;
* the determinism satellite — same mix + seeds ⇒ identical per-tenant
  accounting across repeated ``serve`` runs and across both engine
  schedulers;
* warm vs cold spin-up equivalence (bit-identical simulated outcome);
* the checkpoint tracer-holder regression (RAS + file sink) and
  mid-degradation restore.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.analysis.tenants import check_consistency, deterministic_view
from repro.core.config import DeviceConfig
from repro.core.errors import InitError
from repro.service import (
    AdmissionController,
    FabricPort,
    MemoryService,
    PriorityClass,
    ServiceConfig,
    SessionPool,
    TenantSpec,
    TokenBucket,
    specs_from_profiles,
)
from repro.workloads.mixes import tenant_mix_profiles, tenant_requests

_DEVICE = DeviceConfig(num_links=4, num_banks=8, capacity=2)


def _config(**overrides) -> ServiceConfig:
    base = dict(
        device=_DEVICE,
        devs_per_shard=2,
        slots_per_shard=2,
        max_shards=2,
        provision_requests=32,
    )
    base.update(overrides)
    return ServiceConfig(**base)


def _serve(num_tenants=8, seed=5, base_requests=16, **overrides) -> dict:
    config = _config(**overrides)
    profiles = tenant_mix_profiles(
        num_tenants, seed=seed, base_requests=base_requests
    )
    return MemoryService(config).serve_sync(
        specs_from_profiles(profiles, config)
    )


class TestAdmissionUnits:
    def test_token_bucket_rate_and_burst(self):
        b = TokenBucket(rate=0.5, burst=2.0)
        assert b.ready(0)
        b.consume(0)
        b.consume(0)
        assert not b.ready(0)  # burst drained
        assert not b.ready(1)  # 0.5 tokens accrued
        assert b.ready(2)      # 1.0 token accrued
        b.consume(2)
        assert not b.ready(2)

    def test_token_bucket_zero_rate_never_throttles(self):
        b = TokenBucket(rate=0.0, burst=1.0)
        for cycle in range(100):
            assert b.ready(cycle)
            b.consume(cycle)

    def test_fabric_port_base_delay_and_queueing(self):
        port = FabricPort(base_delay=8, interval=2.0)
        # First request: pure base latency.
        assert port.admit(0) == 8
        # Back-to-back arrivals queue behind the service interval.
        assert port.admit(0) == 10
        assert port.admit(0) == 12
        # A late arrival after the queue drains pays only base delay.
        assert port.admit(100) == 108
        assert port.admitted == 4
        assert port.queued_cycles == (10 - 8) + (12 - 8)

    def test_priority_order_and_fifo_within_class(self):
        ctrl = AdmissionController(_config())
        specs = [
            TenantSpec("b0", iter(()), klass=PriorityClass.BRONZE),
            TenantSpec("g0", iter(()), klass=PriorityClass.GOLD),
            TenantSpec("b1", iter(()), klass=PriorityClass.BRONZE),
            TenantSpec("g1", iter(()), klass=PriorityClass.GOLD),
            TenantSpec("s0", iter(()), klass=PriorityClass.SILVER),
        ]
        for spec in specs:
            ctrl.register(spec, tick=0)
        order = [ctrl.next_grant(1).spec.tenant_id for _ in range(5)]
        assert order == ["g0", "g1", "s0", "b0", "b1"]
        assert ctrl.next_grant(2) is None

    def test_bounded_waiting_room_rejects(self):
        ctrl = AdmissionController(_config(max_waiting=2))
        t1 = ctrl.register(TenantSpec("a", iter(())), tick=0)
        t2 = ctrl.register(TenantSpec("b", iter(())), tick=0)
        t3 = ctrl.register(TenantSpec("c", iter(())), tick=0)
        assert not t1.rejected and not t2.rejected
        assert t3.rejected
        assert ctrl.stats()["rejected"] == 1

    def test_priority_class_parse(self):
        assert PriorityClass.parse("gold") is PriorityClass.GOLD
        assert PriorityClass.parse("SILVER") is PriorityClass.SILVER
        assert PriorityClass.parse(PriorityClass.BRONZE) is PriorityClass.BRONZE
        with pytest.raises(InitError, match="unknown priority class"):
            PriorityClass.parse("platinum")


class TestServiceConfig:
    def test_chained_shard_needs_chain_link(self):
        with pytest.raises(InitError, match="chain hop"):
            _config(slots_per_shard=4)

    def test_invalid_spin_up_mode(self):
        with pytest.raises(InitError, match="spin_up"):
            _config(spin_up="lukewarm")

    def test_total_slots(self):
        assert _config(max_shards=3, slots_per_shard=2).total_slots == 6


class TestTenantMixes:
    def test_profiles_deterministic(self):
        a = tenant_mix_profiles(32, seed=9)
        b = tenant_mix_profiles(32, seed=9)
        assert a == b
        assert tenant_mix_profiles(32, seed=10) != a

    def test_profiles_cover_classes_and_kinds(self):
        profiles = tenant_mix_profiles(64, seed=3)
        assert {p["klass"] for p in profiles} == {"gold", "silver", "bronze"}
        assert len({p["kind"] for p in profiles}) >= 3
        assert len({p["tenant_id"] for p in profiles}) == 64

    def test_profiles_validate_inputs(self):
        with pytest.raises(ValueError, match="num_tenants"):
            tenant_mix_profiles(0)
        with pytest.raises(ValueError, match="unknown tenant kind"):
            tenant_mix_profiles(4, kinds=("random", "quantum"))

    def test_tenant_requests_streams(self):
        capacity = _DEVICE.capacity_bytes
        for profile in tenant_mix_profiles(8, seed=4, base_requests=8):
            stream = list(tenant_requests(profile, capacity))
            assert len(stream) >= 8
            for _cmd, addr, _payload in stream:
                assert 0 <= addr < capacity


class TestServiceRuns:
    def test_accounting_sums_to_pool_totals(self):
        report = _serve(num_tenants=8)
        assert check_consistency(report) == []
        totals = report["accounting"]["totals"]
        assert totals["requests_sent"] > 0
        assert totals["responses"] == totals["requests_sent"]
        assert all(
            a["status"] == "done"
            for a in report["accounting"]["tenants"].values()
        )

    def test_faulty_run_attributes_retries(self):
        report = _serve(num_tenants=8, link_ber=3e-4, link_seed=5)
        assert check_consistency(report) == []
        totals = report["accounting"]["totals"]
        assert totals["hostlink_retries"] + totals["shared_retries"] > 0

    def test_128_concurrent_tenants(self):
        report = _serve(
            num_tenants=128, seed=11, base_requests=4, max_shards=4
        )
        assert check_consistency(report) == []
        assert report["admission"]["granted"] == 128
        accounts = report["accounting"]["tenants"]
        assert len(accounts) == 128
        assert all(a["status"] == "done" for a in accounts.values())

    def test_gold_granted_before_earlier_bronze(self):
        # One slot total: every grant is strictly serialised, so the
        # grant order is fully visible in the admission waits.
        config = _config(
            devs_per_shard=1, slots_per_shard=1, max_shards=1,
            provision_requests=8,
        )
        capacity = config.device.capacity_bytes

        def spec(tid, klass):
            profile = {"tenant_id": tid, "kind": "random", "requests": 8,
                       "seed": 3, "klass": klass}
            return TenantSpec(
                tid, tenant_requests(profile, capacity),
                klass=PriorityClass.parse(klass), cub=0,
            )

        report = MemoryService(config).serve_sync([
            spec("bronze-first", "bronze"),
            spec("bronze-second", "bronze"),
            spec("gold-last", "gold"),
        ])
        accounts = report["accounting"]["tenants"]
        waits = {tid: a["admission_wait_ticks"] for tid, a in accounts.items()}
        assert waits["gold-last"] == 0  # jumped the earlier bronzes
        assert waits["bronze-first"] > 0
        assert waits["bronze-first"] < waits["bronze-second"]

    def test_overload_sheds_at_the_front_door(self):
        report = _serve(
            num_tenants=6, max_waiting=2,
            devs_per_shard=1, slots_per_shard=1, max_shards=1,
        )
        # Registration is synchronous and precedes the first grant, so
        # two tenants queue and the remaining four bounce off the door.
        statuses = [a["status"]
                    for a in report["accounting"]["tenants"].values()]
        assert statuses.count("rejected") == 4
        assert statuses.count("done") == 2
        assert report["admission"]["rejected"] == 4
        assert check_consistency(report) == []

    def test_link_death_contained_to_session(self):
        # Everything dropped: links degrade to FAILED almost immediately;
        # the service must fail affected sessions, retire their slots,
        # shed unplaceable tenants, and still return a consistent report.
        report = _serve(
            num_tenants=6, seed=2, base_requests=8,
            provision_requests=0, link_drop_rate=1.0, link_seed=3,
        )
        statuses = [a["status"]
                    for a in report["accounting"]["tenants"].values()]
        assert "link_failed" in statuses
        assert all(s in ("link_failed", "no_capacity", "done")
                   for s in statuses)
        assert check_consistency(report) == []
        assert any(s["dead_slots"] for s in report["shards"])

    def test_rate_limit_throttles(self):
        config = _config(devs_per_shard=1, slots_per_shard=1, max_shards=1,
                         provision_requests=8)
        capacity = config.device.capacity_bytes
        profile = {"tenant_id": "slow", "kind": "stream", "requests": 32,
                   "seed": 1}
        spec = TenantSpec("slow", tenant_requests(profile, capacity),
                          rate=0.05, burst=1.0, cub=0)
        report = MemoryService(config).serve_sync([spec])
        acct = report["accounting"]["tenants"]["slow"]
        assert acct["status"] == "done"
        assert acct["throttle_cycles"] > 0
        # ~20 cycles/request at rate 0.05: the run is rate-bound.
        assert acct["slot_cycles"] >= 32 / 0.05 * 0.8

    def test_network_model_adds_delay(self):
        report = _serve(num_tenants=4, network_base_delay=32)
        totals = report["accounting"]["totals"]
        assert totals["network_delay_cycles"] >= 32 * totals["requests_sent"]


class TestServeDeterminism:
    """Satellite: fixed mix + seeds ⇒ identical accounting, always."""

    def test_repeat_runs_identical(self):
        a = _serve(num_tenants=12, seed=7, link_ber=2e-4, link_seed=5)
        b = _serve(num_tenants=12, seed=7, link_ber=2e-4, link_seed=5)
        assert deterministic_view(a) == deterministic_view(b)

    @pytest.mark.parametrize("faults", [{}, {"link_ber": 2e-4,
                                             "link_drop_rate": 1e-4,
                                             "link_seed": 5}])
    def test_schedulers_identical(self, faults):
        a = _serve(num_tenants=10, seed=3, scheduler="active", **faults)
        b = _serve(num_tenants=10, seed=3, scheduler="naive", **faults)
        assert (deterministic_view(a, ignore_config=True)
                == deterministic_view(b, ignore_config=True))

    def test_warm_and_cold_spin_up_equivalent(self):
        warm = _serve(num_tenants=6, seed=9, spin_up="warm")
        cold = _serve(num_tenants=6, seed=9, spin_up="cold")
        assert (deterministic_view(warm, ignore_config=True)
                == deterministic_view(cold, ignore_config=True))

    def test_event_loop_interleaving_does_not_matter(self):
        """cycles_per_yield changes asyncio scheduling granularity only —
        with every tenant placed up front, the simulated outcome must
        not move."""
        a = _serve(num_tenants=4, seed=4, cycles_per_yield=1)
        b = _serve(num_tenants=4, seed=4, cycles_per_yield=512)
        av, bv = deterministic_view(a), deterministic_view(b)
        # Tick counts legitimately differ; everything simulated must not.
        av.pop("ticks"), bv.pop("ticks")
        assert av == bv

    def test_serve_inside_running_loop(self):
        """The async entry point composes with an existing event loop."""
        config = _config()
        profiles = tenant_mix_profiles(3, seed=2, base_requests=8)

        async def main():
            service = MemoryService(config)
            return await service.serve(specs_from_profiles(profiles, config))

        report = asyncio.run(main())
        assert check_consistency(report) == []


class TestSessionPool:
    def test_warm_restore_matches_cold_build(self):
        from repro.service.sessions import build_provisioned_shard

        config = _config()
        pool = SessionPool(config)
        warm, _ = pool.spin_up("warm")
        cold = build_provisioned_shard(config)
        assert warm.clock_value == cold.clock_value
        assert warm.stats() == cold.stats()
        assert pool.stats.template_ms > 0
        assert len(pool.stats.warm_ms) == 1

    def test_spin_up_stats_report(self):
        pool = SessionPool(_config(provision_requests=8))
        pool.spin_up("warm")
        pool.spin_up("cold")
        d = pool.stats.as_dict()
        assert d["warm"]["count"] == 1
        assert d["cold"]["count"] == 1
        assert d["template_ms"] > 0


class TestServiceCLI:
    def test_serve_smoke_with_faults(self, capsys, tmp_path):
        from repro.cli import main

        stats_json = tmp_path / "service.json"
        rc = main([
            "serve", "--tenants", "6", "--requests-per-tenant", "8",
            "--provision-requests", "16", "--link-ber", "2e-4",
            "--link-seed", "5", "--stats-json", str(stats_json),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accounting consistency: OK" in out
        assert "per-class rollup" in out
        report = json.loads(stats_json.read_text())
        assert report["accounting"]["tenants"]
        assert check_consistency(report) == []

    def test_tenants_renders_saved_report(self, capsys, tmp_path):
        from repro.cli import main

        stats_json = tmp_path / "service.json"
        assert main([
            "serve", "--tenants", "4", "--requests-per-tenant", "8",
            "--provision-requests", "16", "--stats-json", str(stats_json),
        ]) == 0
        capsys.readouterr()
        assert main(["tenants", str(stats_json), "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "tenant " in out and "class" in out
        assert "more tenants" in out  # limit applied

    def test_tenants_rejects_bad_report(self, capsys, tmp_path):
        from repro.cli import main

        missing = tmp_path / "nope.json"
        assert main(["tenants", str(missing)]) == 2
        not_report = tmp_path / "other.json"
        not_report.write_text("{}")
        assert main(["tenants", str(not_report)]) == 2


class TestCheckpointTracerHolders:
    """Regression: snapshotting must detach *every* tracer reference.

    The RAS controller caches ``self.tracer`` at construction; before
    the fix, snapshotting an ECC-enabled simulation with an open-file
    trace sink crashed on pickling the file handle — and with picklable
    sinks the restored controller logged to a ghost tracer.
    """

    def _ecc_sim(self):
        from repro.core.simulator import HMCSim

        return HMCSim(num_links=4, num_banks=8, capacity=2, ecc_enabled=True)

    def test_snapshot_with_open_file_sink(self, tmp_path):
        from repro.core import checkpoint
        from repro.host.host import Host
        from repro.trace.events import EventType
        from repro.trace.tracer import NDJSONSink
        from repro.workloads.random_access import (
            RandomAccessConfig,
            random_access_requests,
        )

        sim = self._ecc_sim()
        for link in range(4):
            sim.attach_host(0, link)
        sim.set_trace_mask(EventType.STANDARD)
        with open(tmp_path / "trace.ndjson", "w") as fh:
            sim.add_trace_sink(NDJSONSink(fh))
            host = Host(sim)
            cfg = RandomAccessConfig(num_requests=32)
            host.run(random_access_requests(
                sim.config.device.capacity_bytes, cfg))
            blob = checkpoint.snapshot(sim)  # crashed before the fix
            twin = checkpoint.restore(blob)
            # The original keeps its sink wiring (detach is transient)...
            assert sim.devices[0].ras.tracer is sim.tracer
            assert sim.tracer.sinks
            # ...and the twin's RAS logs to the twin's (sinkless) tracer,
            # not a private ghost copy.
            assert twin.devices[0].ras.tracer is twin.tracer
            assert not twin.tracer.sinks
            assert twin.tracer.mask == sim.tracer.mask

    def test_restored_ras_continues_identically(self):
        from repro.core import checkpoint

        sim = self._ecc_sim()
        sim.attach_host(0, 0)
        twin = checkpoint.restore(checkpoint.snapshot(sim))
        assert twin.devices[0].ras.tracer is twin.tracer

    def test_half_degraded_link_restores_half(self):
        from repro.core import checkpoint
        from repro.core.simulator import HMCSim
        from repro.faults.inband import HOST_SENDER, TX_OK, LinkHealth
        from repro.faults.link_model import LinkFaultModel
        from repro.packets.commands import CMD
        from repro.packets.packet import build_memrequest
        from repro.topology.builder import build_chain

        sim = build_chain(
            HMCSim(num_devs=2, num_links=4, num_banks=8, capacity=2),
            host_links=1,
        )
        state = sim.attach_link_fault(
            0, 0, LinkFaultModel(drop_rate=1.0, seed=1),
            max_retries=2, retry_delay=0,
        )
        pkt = build_memrequest(0, 0x40, 1, CMD.RD64, link=0)
        cycle = 0
        while state.health is LinkHealth.FULL:
            state.try_transmit(HOST_SENDER, pkt, cycle, sim.tracer)
            cycle += 1
        assert state.health is LinkHealth.HALF
        state.model.drop_rate = 0.0  # clean from here on
        while state.try_transmit(HOST_SENDER, pkt, cycle, sim.tracer) is not TX_OK:
            cycle += 1
        state.sync_registers(sim.devices)

        twin = checkpoint.restore(checkpoint.snapshot(sim))
        tstate = twin._link_fault_states[0]
        # HALF survives the round trip — no silent reset to FULL.
        assert tstate.health is LinkHealth.HALF
        assert tstate.stats_dict() == state.stats_dict()
        # LRS register mirrors round-trip too.
        assert ([d.regs.snapshot() for d in twin.devices]
                == [d.regs.snapshot() for d in sim.devices])
        # Both copies keep serializing at half width identically.
        for c in range(cycle, cycle + 20):
            assert (state.try_transmit(HOST_SENDER, pkt, c, sim.tracer)
                    == tstate.try_transmit(HOST_SENDER, pkt, c, twin.tracer))
