"""Tests for the parallel sweep runner (repro.analysis.sweep)."""

import pytest

from repro.analysis.sweep import (
    default_workers,
    queue_depth_sweep_parallel,
    run_sweep,
    table1_parallel,
)
from repro.analysis.tables import run_table1
from repro.core.config import PAPER_CONFIGS


def square(x):
    return x * x


class TestRunSweep:
    def test_inline_execution(self):
        assert run_sweep(square, [1, 2, 3], processes=1) == [1, 4, 9]

    def test_order_preserved_in_parallel(self):
        assert run_sweep(square, list(range(10)), processes=2) == [
            i * i for i in range(10)]

    def test_single_point_runs_inline(self):
        assert run_sweep(square, [7], processes=4) == [49]

    def test_lambda_rejected_early(self):
        with pytest.raises(ValueError):
            run_sweep(lambda x: x, [1], processes=2)

    def test_empty_points(self):
        assert run_sweep(square, [], processes=2) == []

    def test_default_workers_sane(self):
        assert 1 <= default_workers() <= 8


class TestParallelTable1:
    def test_matches_serial_results(self):
        """Determinism across processes: the parallel Table I equals the
        serial one bit for bit."""
        n = 1024
        parallel = table1_parallel(num_requests=n, processes=2)
        serial = {r.label: r.cycles for r in run_table1(num_requests=n)}
        assert parallel == serial

    def test_all_configs_present(self):
        out = table1_parallel(num_requests=256, processes=2)
        assert set(out) == set(PAPER_CONFIGS)


class TestQueueDepthSweep:
    def test_sweep_shape(self):
        out = queue_depth_sweep_parallel(
            depths=(4, 64), num_requests=512, processes=2)
        assert set(out) == {4, 64}
        assert all(c > 0 for c in out.values())
