"""Tests for latency analysis (repro.analysis.latency)."""

import math

import numpy as np
import pytest

from repro.analysis.latency import (
    LatencyDistribution,
    cdf,
    compare,
    histogram,
    render,
    tail_ratio,
)


class TestDistribution:
    def test_from_samples(self):
        d = LatencyDistribution.from_samples([10, 20, 30, 40, 50])
        assert d.count == 5
        assert d.mean == 30.0
        assert d.minimum == 10
        assert d.maximum == 50
        assert d.percentiles[50] == 30.0

    def test_empty_samples(self):
        d = LatencyDistribution.from_samples([])
        assert d.count == 0
        assert math.isnan(d.mean)

    def test_custom_percentiles(self):
        d = LatencyDistribution.from_samples(range(101), percentiles=(25, 75))
        assert d.percentiles == {25: 25.0, 75: 75.0}

    def test_as_dict(self):
        d = LatencyDistribution.from_samples([1, 2, 3])
        out = d.as_dict()
        assert out["count"] == 3
        assert "p99" in out


class TestHistogramCdf:
    def test_histogram_counts(self):
        counts, edges = histogram([1, 1, 2, 10], bins=3)
        assert counts.sum() == 4
        assert len(edges) == 4

    def test_histogram_empty(self):
        counts, edges = histogram([], bins=5)
        assert counts.sum() == 0

    def test_cdf_monotone(self):
        xs, fr = cdf([5, 1, 3, 2, 4])
        assert list(xs) == [1, 2, 3, 4, 5]
        assert fr[-1] == 1.0
        assert np.all(np.diff(fr) >= 0)

    def test_cdf_empty(self):
        xs, fr = cdf([])
        assert xs.size == 0 and fr.size == 0


class TestTailRatio:
    def test_uniform_tail(self):
        r = tail_ratio(range(1, 101), p=99)
        assert r == pytest.approx(99.01 / 50.5, rel=0.05)

    def test_heavy_tail_scores_higher(self):
        light = [10] * 99 + [11]
        heavy = [10] * 99 + [1000]
        assert tail_ratio(heavy) > tail_ratio(light)

    def test_empty(self):
        assert math.isnan(tail_ratio([]))


class TestRendering:
    def test_render(self):
        d = LatencyDistribution.from_samples([1, 2, 3])
        text = render(d, label="x")
        assert text.startswith("x:")
        assert "mean=2.0" in text

    def test_compare(self):
        dists = {
            "fast": LatencyDistribution.from_samples([10] * 5),
            "slow": LatencyDistribution.from_samples([20] * 5),
        }
        lines = compare(dists, baseline="slow")
        assert any("baseline" in l for l in lines)
        assert any("2.00x" in l for l in lines)
