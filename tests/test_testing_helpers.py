"""Tests for the downstream test scaffolding (repro.testing)."""

import pytest

from repro.packets.commands import CMD
from repro.testing import (
    assert_conservation,
    drain,
    peek,
    poke,
    reads,
    sim_and_host,
    small_sim,
    writes,
)


class TestFactories:
    def test_small_sim_defaults(self):
        sim = small_sim()
        assert len(sim.devices) == 1
        assert len(sim.host_links()) == 4

    def test_small_sim_engine_kwargs(self):
        sim = small_sim(row_policy="open", host_links=2)
        assert sim.config.row_policy == "open"
        assert len(sim.host_links()) == 2

    def test_reads_and_writes_shapes(self):
        r = reads(3, start=0x100, stride=128)
        assert [a for _, a, _ in r] == [0x100, 0x180, 0x200]
        w = writes(2, value_base=10)
        assert w[0][2] == [10] * 8
        assert w[1][2] == [11] * 8


class TestDrainAndPokePeek:
    def test_drain_collects_expected(self):
        sim, host = sim_and_host()
        for cmd, addr, payload in reads(8):
            sim.send_stalls  # touch
            host.send_request(cmd, addr, payload=payload)
        got = []
        for _ in range(50):
            sim.clock()
            got += host.drain_responses()
            if len(got) == 8:
                break
        assert len(got) == 8
        assert_conservation(sim, host)

    def test_drain_raises_on_hang(self):
        sim = small_sim()
        with pytest.raises(AssertionError):
            drain(sim, expected=1, max_cycles=5)  # nothing was sent

    def test_poke_peek_round_trip(self):
        sim = small_sim()
        poke(sim, 0x4000, [11, 22, 33, 44])
        assert peek(sim, 0x4000, nwords=4) == [11, 22, 33, 44]

    def test_poke_is_map_aware(self):
        """Poked data is visible through simulated reads (and spans
        vault-interleaved atoms correctly)."""
        sim, host = sim_and_host()
        poke(sim, 0x0, list(range(16)))  # two 64-byte blocks
        host.send_request(CMD.RD64, 0x0)
        host.send_request(CMD.RD64, 0x40)
        got = []
        for _ in range(50):
            sim.clock()
            got += host.drain_responses()
            if len(got) == 2:
                break
        payloads = sorted((list(r.payload) for r in got))
        assert payloads == [list(range(8)), list(range(8, 16))]

    def test_alignment_validation(self):
        sim = small_sim()
        with pytest.raises(ValueError):
            poke(sim, 0x8, [1, 2])
        with pytest.raises(ValueError):
            peek(sim, 0x0, nwords=3)

    def test_conservation_failure_detected(self):
        sim, host = sim_and_host()
        host.send_request(CMD.RD64, 0x0)
        with pytest.raises(AssertionError):
            assert_conservation(sim, host)  # response still in flight
