"""Chaos engine unit tests: validation, ordering, construction paths.

The schedule itself is pure data — these tests pin its determinism and
its typed-error surface; the end-to-end campaign behaviour lives in
tests/test_service_recovery.py.
"""

import json

import pytest

from repro.core.errors import InitError
from repro.faults.chaos import CHAOS_KINDS, ChaosEvent, ChaosSchedule


class TestChaosEvent:
    def test_valid_kinds_are_canonical(self):
        assert set(CHAOS_KINDS) == {
            "shard_crash", "watchdog_trip", "link_kill",
            "link_degrade", "latency_spike",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(InitError, match="kind"):
            ChaosEvent(at=10, kind="meteor_strike")

    def test_negative_at_rejected(self):
        with pytest.raises(InitError, match="'at'"):
            ChaosEvent(at=-1, kind="shard_crash")

    def test_negative_shard_rejected(self):
        with pytest.raises(InitError, match="'shard'"):
            ChaosEvent(at=0, kind="shard_crash", shard=-2)

    def test_negative_link_rejected(self):
        with pytest.raises(InitError, match="dev/link"):
            ChaosEvent(at=0, kind="link_kill", link=-1)

    def test_latency_spike_needs_positive_fields(self):
        with pytest.raises(InitError, match="extra_delay"):
            ChaosEvent(at=0, kind="latency_spike", duration=8)
        with pytest.raises(InitError, match="duration"):
            ChaosEvent(at=0, kind="latency_spike", extra_delay=8)

    def test_as_dict_round_trips_through_from_spec(self):
        ev = ChaosEvent(at=5, kind="latency_spike", shard=1,
                        extra_delay=16, duration=64)
        rebuilt = ChaosSchedule.from_spec([ev.as_dict()]).events[0]
        assert rebuilt == ev


class TestChaosSchedule:
    def test_events_sorted_canonically(self):
        sched = ChaosSchedule([
            ChaosEvent(at=20, kind="shard_crash", shard=0),
            ChaosEvent(at=10, kind="link_kill", shard=1),
            ChaosEvent(at=10, kind="shard_crash", shard=0),
        ])
        keys = [ev.sort_key for ev in sched]
        assert keys == sorted(keys)
        assert sched.events[0].at == 10 and sched.events[0].shard == 0

    def test_same_stamp_orders_by_kind(self):
        # Two events on the same shard at the same cycle: canonical
        # kind order breaks the tie, so construction order is irrelevant.
        a = ChaosEvent(at=5, kind="link_kill", shard=0)
        b = ChaosEvent(at=5, kind="shard_crash", shard=0)
        assert ChaosSchedule([a, b]).events == ChaosSchedule([b, a]).events

    def test_for_shard_slices(self):
        sched = ChaosSchedule([
            ChaosEvent(at=1, kind="shard_crash", shard=0),
            ChaosEvent(at=2, kind="shard_crash", shard=1),
            ChaosEvent(at=3, kind="link_kill", shard=0),
        ])
        assert [ev.at for ev in sched.for_shard(0)] == [1, 3]
        assert [ev.at for ev in sched.for_shard(2)] == []

    def test_non_event_items_rejected(self):
        with pytest.raises(InitError, match="ChaosEvent"):
            ChaosSchedule([{"at": 1, "kind": "shard_crash"}])


class TestFromSpec:
    def test_bare_list_and_wrapped_dict_agree(self):
        events = [{"at": 4, "kind": "shard_crash"}]
        a = ChaosSchedule.from_spec(events)
        b = ChaosSchedule.from_spec({"events": events})
        assert a.events == b.events

    def test_seed_recorded(self):
        sched = ChaosSchedule.from_spec({"events": [], "seed": 42})
        assert sched.seed == 42
        assert sched.as_dict() == {"events": [], "seed": 42}

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(InitError, match="unknown keys"):
            ChaosSchedule.from_spec({"events": [], "surprise": 1})

    def test_unknown_event_key_rejected(self):
        with pytest.raises(InitError, match="unknown keys"):
            ChaosSchedule.from_spec([{"at": 1, "kind": "shard_crash",
                                      "sev": 9}])

    def test_missing_required_fields_rejected(self):
        with pytest.raises(InitError, match="'at' and 'kind'"):
            ChaosSchedule.from_spec([{"kind": "shard_crash"}])

    def test_non_integer_field_rejected(self):
        with pytest.raises(InitError, match="non-integer"):
            ChaosSchedule.from_spec([{"at": "soon", "kind": "shard_crash"}])

    def test_wrong_container_type_rejected(self):
        with pytest.raises(InitError, match="dict or a list"):
            ChaosSchedule.from_spec("chaos")


class TestFromJson:
    def test_round_trip(self, tmp_path):
        spec = {"events": [{"at": 8, "kind": "shard_crash", "shard": 1}],
                "seed": 7}
        path = tmp_path / "chaos.json"
        path.write_text(json.dumps(spec))
        sched = ChaosSchedule.from_json(str(path))
        assert sched.as_dict() == spec

    def test_missing_file_raises_init_error(self, tmp_path):
        with pytest.raises(InitError, match="cannot read"):
            ChaosSchedule.from_json(str(tmp_path / "absent.json"))

    def test_bad_json_raises_init_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(InitError, match="not valid JSON"):
            ChaosSchedule.from_json(str(path))


class TestGenerate:
    def test_same_seed_same_campaign(self):
        a = ChaosSchedule.generate(seed=9, shards=3, crashes=4,
                                   link_kills=2, latency_spikes=2)
        b = ChaosSchedule.generate(seed=9, shards=3, crashes=4,
                                   link_kills=2, latency_spikes=2)
        assert a.as_dict() == b.as_dict()

    def test_different_seed_different_campaign(self):
        a = ChaosSchedule.generate(seed=9, shards=3, crashes=4)
        b = ChaosSchedule.generate(seed=10, shards=3, crashes=4)
        assert a.as_dict() != b.as_dict()

    def test_counts_and_bounds(self):
        sched = ChaosSchedule.generate(
            seed=1, shards=2, horizon=512, crashes=3, link_kills=2,
            link_degrades=1, latency_spikes=2, first_at=64,
        )
        assert len(sched) == 8
        kinds = [ev.kind for ev in sched]
        assert kinds.count("shard_crash") == 3
        assert all(64 <= ev.at < 512 for ev in sched)
        assert all(0 <= ev.shard < 2 for ev in sched)

    def test_bad_parameters_rejected(self):
        with pytest.raises(InitError, match="shards"):
            ChaosSchedule.generate(seed=1, shards=0)
        with pytest.raises(InitError, match="horizon"):
            ChaosSchedule.generate(seed=1, horizon=32, first_at=64)
