"""Unit tests for interleave helpers (repro.addressing.interleave)."""

import numpy as np
import pytest

from repro.addressing.address_map import AddressMap, AddressMapMode
from repro.addressing.interleave import (
    bank_histogram,
    block_offset_bits,
    conflict_fraction,
    iter_blocks,
    required_address_bits,
    sweep_addresses,
    vault_histogram,
)

GB = 1 << 30


@pytest.fixture
def amap():
    return AddressMap(num_vaults=16, num_banks=8, block_size=64, capacity_bytes=1 * GB)


def test_block_offset_bits():
    assert block_offset_bits(64) == 6
    assert block_offset_bits(128) == 7
    with pytest.raises(ValueError):
        block_offset_bits(48)


def test_required_address_bits():
    assert required_address_bits(2 * GB) == 31
    with pytest.raises(ValueError):
        required_address_bits(3 * GB)


def test_sweep_addresses_default_stride(amap):
    addrs = sweep_addresses(amap, 10)
    assert addrs == [i * 64 for i in range(10)]


def test_sweep_wraps_at_capacity(amap):
    n = amap.capacity_bytes // amap.block_size
    addrs = sweep_addresses(amap, n + 1)
    assert addrs[-1] == 0


def test_vault_histogram_uniform_under_sweep(amap):
    """The default map's reason to exist: a sweep spreads evenly."""
    addrs = sweep_addresses(amap, 16 * 8)
    hist = vault_histogram(amap, addrs)
    assert hist.shape == (16,)
    assert np.all(hist == 8)


def test_bank_histogram_shape_and_total(amap):
    addrs = sweep_addresses(amap, 256)
    hist = bank_histogram(amap, addrs)
    assert hist.shape == (16, 8)
    assert hist.sum() == 256


def test_conflict_fraction_zero_for_interleaved_sweep(amap):
    addrs = sweep_addresses(amap, 128)
    assert conflict_fraction(amap, addrs, window=4) == 0.0


def test_conflict_fraction_one_for_fixed_address(amap):
    addrs = [0] * 32
    frac = conflict_fraction(amap, addrs, window=2)
    assert frac == pytest.approx(31 / 32)


def test_conflict_fraction_higher_for_linear_map():
    """LINEAR mapping keeps a sweep inside one vault/bank — far more
    conflicts than the default low-interleave map."""
    vb = AddressMap(16, 8, 64, 1 * GB, mode=AddressMapMode.VAULT_BANK)
    lin = AddressMap(16, 8, 64, 1 * GB, mode=AddressMapMode.LINEAR)
    addrs = [i * 64 for i in range(128)]
    assert conflict_fraction(lin, addrs) > conflict_fraction(vb, addrs)


def test_conflict_fraction_empty_stream(amap):
    assert conflict_fraction(amap, []) == 0.0
    assert conflict_fraction(amap, [0]) == 0.0


def test_iter_blocks_small_device():
    # Construct a tiny legal device for exhaustive iteration.
    small = AddressMap(num_vaults=16, num_banks=8, block_size=64,
                       capacity_bytes=1 << 15)
    blocks = list(iter_blocks(small))
    assert len(blocks) == (1 << 15) // 64
    assert blocks[0] == 0
    assert blocks[-1] == (1 << 15) - 64
