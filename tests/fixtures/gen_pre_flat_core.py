"""Generate the pre-flat-core checkpoint compatibility fixture.

This script was run against the tree *before* the flat-core overhaul
changed ``Bank``'s pickled storage layout, producing:

- ``pre_flat_core_snapshot.bin`` — a :func:`snapshot_bundle` of a
  mid-flight simulation + host (queues loaded, banks dirty, tags
  outstanding) whose pickle stream still contains the dict-of-atoms
  bank storage.
- ``pre_flat_core_expect.json`` — the observable outcome of a
  deterministic continuation run performed on a *restored* copy of
  that snapshot: final cycle count, host counters, a fingerprint of
  the continuation's trace bytes, and a fingerprint of the final bank
  contents.

``tests/test_checkpoint_compat.py`` restores the committed blob on the
current tree and replays the same continuation; matching fingerprints
prove old blobs load into the new storage format and resume
bit-identically.  Re-running this script on a post-flat-core tree
would overwrite the fixture with a new-format blob and defeat the
test — the committed outputs are historical artifacts, keep them.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os

from repro.core.checkpoint import restore_bundle, snapshot_bundle
from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.trace.events import EventType
from repro.trace.tracer import MemorySink
from repro.workloads.random_access import (
    RandomAccessConfig,
    random_access_requests,
)

HERE = os.path.dirname(os.path.abspath(__file__))
BLOB_PATH = os.path.join(HERE, "pre_flat_core_snapshot.bin")
EXPECT_PATH = os.path.join(HERE, "pre_flat_core_expect.json")

#: Phase A (pre-snapshot): write-heavy so the banks hold real content.
PHASE_A = RandomAccessConfig(num_requests=768, read_fraction=0.25, seed=11)
#: Phase B (the continuation the compatibility test replays).
PHASE_B = RandomAccessConfig(num_requests=256, read_fraction=0.5, seed=12)


def build_sim():
    device = DeviceConfig(num_links=4, num_banks=8, capacity=2, queue_depth=32)
    sim = HMCSim(SimConfig(device=device))
    for link in range(device.num_links):
        sim.attach_host(0, link)
    return sim, Host(sim)


def storage_fingerprint(sim: HMCSim) -> str:
    """sha256 over every materialised atom, in canonical order."""
    h = hashlib.sha256()
    for dev in sim.devices:
        for vault in dev.vaults:
            for bank in vault.banks:
                for atom in bank.touched_atoms():
                    w0, w1 = bank.atom_words(atom)
                    h.update(
                        f"{dev.dev_id}/{vault.vault_id}/{bank.bank_id}/"
                        f"{atom}:{w0}:{w1};".encode()
                    )
    return h.hexdigest()


def trace_fingerprint(events) -> str:
    """sha256 over the canonical dict form of every trace event."""
    h = hashlib.sha256()
    for ev in events:
        h.update(repr(sorted(ev.to_dict().items())).encode())
    return h.hexdigest()


#: Packet serials are drawn from a process-global counter that is not
#: part of the snapshot; pin it so the continuation's trace bytes are
#: reproducible in any process (the compatibility test does the same).
CONTINUATION_SERIAL_BASE = 1 << 20


def run_continuation(sim: HMCSim, host: Host) -> dict:
    """Drive phase B on a restored (sim, host) and record observables."""
    from repro.packets import packet as packet_mod

    packet_mod._packet_serial = itertools.count(CONTINUATION_SERIAL_BASE)
    sim.set_trace_mask(EventType.STANDARD)
    sink = sim.add_trace_sink(MemorySink())
    stream = random_access_requests(sim.config.device.capacity_bytes, PHASE_B)
    result = host.run(stream, cub=0)
    return {
        "final_cycle": sim.clock_value,
        "packets_sent": sim.packets_sent,
        "packets_received": sim.packets_received,
        "requests_sent": result.requests_sent,
        "responses_received": result.responses_received,
        "errors_received": result.errors_received,
        "trace_events": len(sink.events),
        "trace_sha256": trace_fingerprint(sink.events),
        "storage_sha256": storage_fingerprint(sim),
    }


def main() -> None:
    sim, host = build_sim()
    stream = random_access_requests(sim.config.device.capacity_bytes, PHASE_A)
    # drain=False: leave requests in flight so the snapshot carries
    # loaded queues and outstanding tags, not just bank contents.
    host.run(stream, cub=0, drain=False)
    blob = snapshot_bundle(sim, host)
    with open(BLOB_PATH, "wb") as fh:
        fh.write(blob)

    # Replay the continuation on a *restored* copy — exactly what the
    # compatibility test does — so the expectations match its flow.
    sim2, (host2,) = restore_bundle(blob)
    expect = run_continuation(sim2, host2)
    expect["snapshot_cycle"] = sim.clock_value
    expect["blob_bytes"] = len(blob)
    with open(EXPECT_PATH, "w") as fh:
        json.dump(expect, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(json.dumps(expect, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
