"""Paper-conformance checklist.

One test per checkable claim in the paper text, quoted (abridged) in
each docstring — a single place auditing that the reproduction matches
what the paper actually says, section by section.
"""

import pytest

from repro.core.config import (
    DeviceConfig,
    PAPER_CONFIGS,
    PAPER_TABLE1_CYCLES,
    PAPER_TABLE1_REQUESTS,
    SimConfig,
)
from repro.core.device import HMCDevice
from repro.core.errors import InitError, TopologyError
from repro.core.simulator import HMCSim
from repro.packets.commands import CMD, request_flits
from repro.packets.flit import FLIT_BYTES, MAX_FLITS
from repro.packets.packet import ADRS_BITS, Packet, build_memrequest
from repro.registers.regdefs import REGISTER_MAP, RegClass
from repro.topology.builder import build_simple
from repro.trace.events import EventType


class TestSectionIII_DeviceHierarchy:
    def test_4_or_8_links(self):
        """'The external I/O links are provided by four or eight
        logical links.'"""
        DeviceConfig(num_links=4)
        DeviceConfig(num_links=8)
        with pytest.raises(InitError):
            DeviceConfig(num_links=6)

    def test_link_lane_counts(self):
        """'Each link is a group of sixteen or eight serial I/O ...
        bidirectional links.'"""
        assert all(l.lanes == 16 for l in HMCDevice(0, DeviceConfig(num_links=4)).links)
        assert all(l.lanes == 8 for l in HMCDevice(0, DeviceConfig(num_links=8)).links)

    def test_link_rates(self):
        """'Four link devices have the ability to operate at 10, 12.5
        and 15Gbps.  Eight link devices ... at 10Gbps.'"""
        for rate in (10.0, 12.5, 15.0):
            DeviceConfig(num_links=4, link_rate_gbps=rate)
        DeviceConfig(num_links=8, link_rate_gbps=10.0)
        with pytest.raises(InitError):
            DeviceConfig(num_links=8, link_rate_gbps=12.5)

    def test_320_gbs_headline(self):
        """'available bandwidth capacity of up to 320GB/s per device'"""
        from repro.analysis.bandwidth import raw_device_bandwidth_gbs
        assert raw_device_bandwidth_gbs(8, 16, 10.0) == 320.0

    def test_quad_units_hold_four_vaults(self):
        """'Each quad unit represents four vault units.'"""
        dev = HMCDevice(0, DeviceConfig(num_links=8))
        assert all(len(q.vaults) == 4 for q in dev.quads)

    def test_vaults_span_banks_span_drams(self):
        """Vault -> banks -> DRAMs hierarchy with vertical bank layers."""
        dev = HMCDevice(0, DeviceConfig(num_banks=16, capacity=4))
        assert all(len(v.banks) == 16 for v in dev.vaults)
        assert all(len(b.drams) == 8 for v in dev.vaults for b in v.banks)

    def test_column_fetches_are_32_bytes(self):
        """'Read or write requests to a target bank are always performed
        in 32-bytes for each column fetch.'"""
        from repro.core.bank import Bank, COLUMN_FETCH_BYTES
        assert COLUMN_FETCH_BYTES == 32
        b = Bank(0, 1 << 20)
        b.read(0, 64)
        assert b.column_fetches == 2


class TestSectionIII_Addressing:
    def test_34_bit_field(self):
        """'Physical addresses for HMC devices are encoded into a 34-bit
        field.'"""
        assert ADRS_BITS == 34

    def test_field_usage_by_link_count(self):
        """'four link devices ... utilize the lower 32-bits ... eight
        link devices ... the lower 33-bits.'"""
        assert DeviceConfig(num_links=4).address_bits == 32
        assert DeviceConfig(num_links=8).address_bits == 33

    def test_low_interleave_default(self):
        """'mapping the less significant address bits to the vault
        address, followed immediately by the bank address bits.'"""
        dev = HMCDevice(0, DeviceConfig())
        assert dev.amap.field_order[0] == "vault"
        assert dev.amap.field_order[1] == "bank"

    def test_sequential_interleaves_vaults_then_banks(self):
        """'forces sequential address to first interleave across vaults
        then across banks within vault.'"""
        amap = HMCDevice(0, DeviceConfig()).amap
        first_wrap = amap.decode(amap.num_vaults * amap.block_size)
        assert (first_wrap.vault, first_wrap.bank) == (0, 1)


class TestSectionIII_Packets:
    def test_flit_is_16_bytes(self):
        """'a multiple of a single 16-byte flow unit, or FLIT.'"""
        assert FLIT_BYTES == 16

    def test_max_packet_9_flits(self):
        """'The maximum packet size contains 9 FLITs, or 144-bytes.'"""
        assert MAX_FLITS == 9
        assert MAX_FLITS * FLIT_BYTES == 144

    def test_min_packet_contains_header_and_tail(self):
        """'The minimum 16-byte (one FLIT) packet contains a packet
        header and packet tail.'"""
        words = Packet(cmd=CMD.NULL).encode()
        assert len(words) == 2  # one 64-bit header + one 64-bit tail

    def test_reads_single_flit(self):
        """'read requests are always configured using a single FLIT.'"""
        for c in (CMD.RD16, CMD.RD32, CMD.RD64, CMD.RD128):
            assert request_flits(c) == 1

    def test_writes_2_to_9_flits(self):
        """'these request types have packet widths of 2-9 FLITs.'"""
        assert request_flits(CMD.WR16) == 2
        assert request_flits(CMD.WR128) == 9
        assert request_flits(CMD.ADD16) == 2


class TestSectionIV_Architecture:
    def test_queue_depths_set_at_init(self):
        """'requiring users to specify the depth of both queueing layers
        at initialization time.'"""
        dev = HMCDevice(0, DeviceConfig(queue_depth=32, xbar_depth=256))
        assert dev.vaults[0].rqst.depth == 32
        assert dev.xbars[0].rqst.depth == 256

    def test_six_subcycle_stages(self):
        """Fig. 3 / §IV.C: six ordered sub-cycle operations per clock."""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        sink = sim.trace_to_memory(EventType.ALL)
        sim.clock()
        stages = [e.stage for e in sink.events if e.type is EventType.SUBCYCLE]
        assert stages == [1, 2, 3, 4, 5, 6]

    def test_64_bit_clock(self):
        """'updates the unsigned sixty four bit clock value by one.'"""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        sim.clock_value = (1 << 64) - 2
        sim.clock()
        assert sim.clock_value == (1 << 64) - 1

    def test_register_classes(self):
        """'registers that can be read and written (RW), ... read-only
        (RO) and ... self-clearing after being written to (RWS).'"""
        assert {r.cls for r in REGISTER_MAP} == {
            RegClass.RW, RegClass.RO, RegClass.RWS}

    def test_nonlinear_register_indexing(self):
        """'Register indexing on physical HMC devices is not purely
        linear and does not begin at zero.'"""
        phys = sorted(r.phys for r in REGISTER_MAP)
        assert phys[0] != 0
        assert phys != list(range(phys[0], phys[0] + len(phys)))


class TestSectionV_API:
    def test_host_cube_id_is_num_devices_plus_one(self):
        """'hosts are represented using non zero HMC Cube ID's of one
        greater than the total number of devices.'"""
        assert SimConfig(num_devs=3).host_cub == 4

    def test_homogeneous_devices(self):
        """'devices within a single object must be physically
        homogeneous.'"""
        sim = HMCSim(num_devs=3, num_links=4, num_banks=8, capacity=2)
        configs = {d.config for d in sim.devices}
        assert len(configs) == 1

    def test_no_loopback_links(self):
        """'the infrastructure does not permit users to configure links
        as loopbacks.'"""
        sim = HMCSim(num_devs=2, num_links=4, num_banks=8, capacity=2)
        with pytest.raises(TopologyError):
            sim.connect(0, 0, 0, 1)

    def test_must_have_host_link(self):
        """'the user must configure at least one device that connects to
        a host link.  Otherwise, the host will have no access ...'"""
        sim = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)
        with pytest.raises(TopologyError):
            sim.clock()

    def test_jtag_out_of_band(self):
        """'This interface exists external to the normal HMC-Sim notion
        of clock domains.'"""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        from repro.registers.regdefs import index_by_name, physical_index
        sim.jtag_reg_write(0, physical_index(index_by_name("EDR0")), 1)
        assert sim.clock_value == 0  # no clock progression

    def test_clock_required_for_internal_progress(self):
        """'internal device operations will not progress until an
        appropriate call to the clock function.'"""
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2))
        sim.send(build_memrequest(0, 0, 0, CMD.RD64, link=0))
        assert sim.devices[0].total_requests_processed == 0


class TestSectionVI_Evaluation:
    def test_table1_constants(self):
        """'33,554,432 64-byte memory requests where the read/write
        mixture was 50/50' and the four configurations with '128
        bi-directional arbitration queue slots for each crossbar link
        and 64 ... for each vault unit.'"""
        assert PAPER_TABLE1_REQUESTS == 33_554_432
        assert len(PAPER_CONFIGS) == 4
        for cfg in PAPER_CONFIGS.values():
            assert cfg.xbar_depth == 128
            assert cfg.queue_depth == 64

    def test_table1_cycle_values_recorded(self):
        """Table I's four runtime values."""
        assert list(PAPER_TABLE1_CYCLES.values()) == [
            3_404_553, 2_327_858, 1_708_918, 879_183]

    def test_figure5_series_exist(self):
        """'the number of bank conflicts, read requests and write
        requests ... crossbar request stalls ... latency penalties.'"""
        assert EventType.FIGURE5 == (
            EventType.BANK_CONFLICT | EventType.RQST_READ
            | EventType.RQST_WRITE | EventType.XBAR_RQST_STALL
            | EventType.LATENCY_PENALTY)
