"""Tests for the energy model and statistics dump (repro.analysis)."""

import json

import pytest

from repro.analysis.energy import (
    DDR3_PJ_PER_BIT,
    EnergyCoefficients,
    estimate,
    render,
)
from repro.analysis.statdump import dump_stats, to_json
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple


def run_sim(n=64, **kw):
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                              capacity=2, **kw))
    host = Host(sim)
    host.run([(CMD.RD64, i * 64, None) for i in range(n)])
    return sim


class TestEnergyModel:
    def test_components_present_and_positive(self):
        report = estimate(run_sim())
        for key in ("links", "crossbars", "activations", "columns", "background"):
            assert key in report.components
            assert report.components[key] >= 0
        assert report.total_pj > 0
        assert report.delivered_bits > 0

    def test_idle_run_costs_only_background(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        sim.clock(10)
        report = estimate(sim)
        assert report.components["links"] == 0
        assert report.components["background"] > 0
        assert report.pj_per_bit == float("inf")

    def test_more_traffic_more_energy(self):
        small = estimate(run_sim(n=32))
        large = estimate(run_sim(n=256))
        assert large.total_pj > small.total_pj

    def test_open_row_policy_reduces_activations_for_local_traffic(self):
        """Row-local traffic under the open policy activates once per
        row, not once per access — the energy win of row buffers."""
        def run(policy):
            sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                      capacity=2, row_policy=policy))
            host = Host(sim)
            host.run([(CMD.RD64, 0x40, None)] * 64)
            return estimate(sim)

        closed = run("closed")
        opened = run("open")
        assert opened.components["activations"] < closed.components["activations"]

    def test_custom_coefficients(self):
        sim = run_sim()
        zero_links = estimate(sim, EnergyCoefficients(link_pj_per_bit=0.0))
        assert zero_links.components["links"] == 0.0

    def test_vs_ddr3_ratio(self):
        report = estimate(run_sim(n=256))
        assert report.vs_ddr3() == pytest.approx(
            DDR3_PJ_PER_BIT / report.pj_per_bit)

    def test_render_and_as_dict(self):
        report = estimate(run_sim())
        text = render(report)
        assert "pJ per delivered bit" in text
        d = report.as_dict()
        assert "total_pj" in d and "links" in d


class TestStatDump:
    def test_tree_structure(self):
        tree = dump_stats(run_sim())
        assert tree["cycles"] > 0
        assert tree["config"]["device"] == "4-Link; 8-Bank; 2GB"
        assert len(tree["devices"]) == 1
        dev = tree["devices"][0]
        assert len(dev["links"]) == 4
        assert len(dev["xbars"]) == 4
        assert len(dev["vaults"]) == 16
        assert len(dev["vaults"][0]["banks"]) == 8

    def test_counters_consistent_with_summary(self):
        sim = run_sim(n=64)
        tree = dump_stats(sim)
        vault_total = sum(
            v["reads"] + v["writes"] + v["atomics"] + v["mode_accesses"]
            for v in tree["devices"][0]["vaults"]
        )
        assert vault_total == tree["summary"]["requests_processed"] == 64

    def test_exclude_banks(self):
        tree = dump_stats(run_sim(), include_banks=False)
        assert "banks" not in tree["devices"][0]["vaults"][0]

    def test_json_serialisable(self):
        text = to_json(run_sim())
        parsed = json.loads(text)
        assert parsed["summary"]["packets_sent"] == 64

    def test_fault_stats_included_when_present(self):
        from repro.faults.link_model import LinkFaultModel
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2), host_links=1)
        sim.attach_fault_model(0, 0, LinkFaultModel(ber=0.0))
        Host(sim).run([(CMD.RD64, 0, None)])
        tree = dump_stats(sim)
        assert "faults" in tree
        assert "dev0.link0" in tree["faults"]

    def test_stage_counts_exported(self):
        tree = dump_stats(run_sim())
        assert len(tree["stage_counts"]) == 7
        assert tree["stage_counts"][6] == tree["cycles"]
