"""Checkpoint format compatibility (flat-hot-core satellite).

``tests/fixtures/pre_flat_core_snapshot.bin`` was produced by
``tests/fixtures/gen_pre_flat_core.py`` on the tree *before* the
flat-core overhaul replaced ``Bank``'s dict-of-atoms pickle with the
paged ``_storage_v2`` codec.  Restoring it on the current tree and
replaying the recorded continuation must reproduce the committed
observables bit-for-bit: old blobs load into the array-backed storage
and resume identically.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.bank import Bank
from repro.core.checkpoint import restore_bundle
from tests.fixtures.gen_pre_flat_core import (
    BLOB_PATH,
    EXPECT_PATH,
    run_continuation,
)


@pytest.fixture(scope="module")
def fixture_blob():
    if not (os.path.exists(BLOB_PATH) and os.path.exists(EXPECT_PATH)):
        pytest.skip("pre-flat-core fixture not present")
    with open(BLOB_PATH, "rb") as fh:
        blob = fh.read()
    with open(EXPECT_PATH) as fh:
        expect = json.load(fh)
    return blob, expect


class TestPreFlatCoreBlob:
    def test_blob_is_the_committed_artifact(self, fixture_blob):
        blob, expect = fixture_blob
        assert len(blob) == expect["blob_bytes"]
        # The committed blob predates _storage_v2; if a regenerated
        # (new-format) blob ever replaces it, this test stops proving
        # anything — fail loudly instead.
        assert b"_storage_v2" not in blob
        assert b"_blocks" in blob

    def test_restores_into_paged_storage(self, fixture_blob):
        blob, expect = fixture_blob
        sim, hosts = restore_bundle(blob)
        assert sim.clock_value == expect["snapshot_cycle"]
        banks = [
            bank
            for dev in sim.devices
            for vault in dev.vaults
            for bank in vault.banks
        ]
        assert all(isinstance(b, Bank) for b in banks)
        # Phase A was write-heavy: restored content must be non-empty
        # and live in the paged arrays, not a legacy dict.
        assert any(b._pages for b in banks)
        assert not any(hasattr(b, "_blocks") for b in banks)
        touched = sum(len(b.touched_atoms()) for b in banks)
        assert touched > 0

    def test_continuation_replays_bit_identically(self, fixture_blob):
        blob, expect = fixture_blob
        sim, (host,) = restore_bundle(blob)
        got = run_continuation(sim, host)
        for key, want in expect.items():
            # blob_bytes/snapshot_cycle describe the snapshot itself,
            # not the continuation (covered by the tests above).
            if key in ("blob_bytes", "snapshot_cycle"):
                continue
            assert got[key] == want, key
