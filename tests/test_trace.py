"""Unit tests for the tracing subsystem (repro.trace)."""

import io

import numpy as np
import pytest

from repro.trace.events import EventType, TraceEvent
from repro.trace.parse import filter_events, parse_csv, parse_ndjson, replay_into_stats
from repro.trace.stats import TraceStats
from repro.trace.tracer import (
    CSVSink,
    CountingSink,
    MemorySink,
    NDJSONSink,
    NullSink,
    StatsSink,
    Tracer,
)


def ev(etype=EventType.RQST_READ, cycle=0, **kw):
    return TraceEvent(type=etype, cycle=cycle, **kw)


class TestEvents:
    def test_to_dict_omits_unset_fields(self):
        d = ev(vault=3).to_dict()
        assert d["vault"] == 3
        assert "bank" not in d
        assert d["type"] == "RQST_READ"

    def test_round_trip(self):
        e = ev(EventType.BANK_CONFLICT, cycle=9, dev=1, vault=2, bank=5,
               serial=77, extra={"addr": 64})
        e2 = TraceEvent.from_dict(e.to_dict())
        assert e2.type is EventType.BANK_CONFLICT
        assert (e2.cycle, e2.dev, e2.vault, e2.bank, e2.serial) == (9, 1, 2, 5, 77)
        assert e2.extra == {"addr": 64}

    def test_mask_composition(self):
        assert EventType.FIGURE5 & EventType.BANK_CONFLICT
        assert EventType.FIGURE5 & EventType.LATENCY_PENALTY
        assert not (EventType.FIGURE5 & EventType.SUBCYCLE)
        assert EventType.ALL & EventType.SUBCYCLE
        assert not (EventType.STANDARD & EventType.SUBCYCLE)


class TestTracer:
    def test_mask_filters(self):
        t = Tracer(mask=EventType.RQST_READ)
        sink = t.add_sink(MemorySink())
        t.emit(ev(EventType.RQST_READ))
        t.emit(ev(EventType.RQST_WRITE))
        assert len(sink) == 1
        assert t.emitted == 1
        assert t.dropped == 1

    def test_enabled_for_requires_sink(self):
        t = Tracer(mask=EventType.ALL)
        assert not t.enabled_for(EventType.RQST_READ)
        t.add_sink(NullSink())
        assert t.enabled_for(EventType.RQST_READ)
        assert not t.enabled_for(EventType.NONE)

    def test_fan_out(self):
        t = Tracer(mask=EventType.ALL)
        a, b = t.add_sink(MemorySink()), t.add_sink(CountingSink())
        t.emit(ev())
        assert len(a) == 1
        assert b.total() == 1

    def test_event_convenience(self):
        t = Tracer(mask=EventType.ALL)
        sink = t.add_sink(MemorySink())
        t.event(EventType.MISROUTE, 4, dev=1, extra={"target_cub": 9})
        assert sink.events[0].extra["target_cub"] == 9

    def test_remove_sink(self):
        t = Tracer(mask=EventType.ALL)
        s = t.add_sink(MemorySink())
        t.remove_sink(s)
        t.emit(ev())
        assert len(s) == 0


class TestFileSinks:
    def test_ndjson_round_trip(self):
        buf = io.StringIO()
        sink = NDJSONSink(buf)
        events = [ev(cycle=i, vault=i % 4) for i in range(5)]
        for e in events:
            sink.emit(e)
        sink.close()
        buf.seek(0)
        parsed = list(parse_ndjson(buf))
        assert len(parsed) == 5
        assert [p.cycle for p in parsed] == list(range(5))

    def test_ndjson_rejects_garbage(self):
        buf = io.StringIO('{"nope": 1}\n')
        with pytest.raises(ValueError):
            list(parse_ndjson(buf))

    def test_csv_round_trip(self):
        buf = io.StringIO()
        sink = CSVSink(buf)
        sink.emit(ev(EventType.XBAR_RQST_STALL, cycle=3, dev=0, link=2,
                     extra={"remote": True}))
        sink.close()
        buf.seek(0)
        rows = list(parse_csv(buf))
        assert rows[0].type is EventType.XBAR_RQST_STALL
        assert rows[0].link == 2
        assert rows[0].extra == {"remote": True}

    def test_counting_sink(self):
        s = CountingSink()
        for _ in range(3):
            s.emit(ev(EventType.RQST_READ))
        s.emit(ev(EventType.RQST_WRITE))
        assert s.counts[EventType.RQST_READ] == 3
        assert s.total() == 4


class TestTraceStats:
    def test_vault_series_accumulation(self):
        st = TraceStats(num_vaults=4)
        st.add(ev(EventType.RQST_READ, cycle=0, vault=1))
        st.add(ev(EventType.RQST_READ, cycle=0, vault=1))
        st.add(ev(EventType.RQST_READ, cycle=2, vault=3))
        s = st.vault_series(EventType.RQST_READ)
        assert s.values.tolist() == [2, 0, 1]
        assert s.total == 3
        assert s.peak == 2
        per_vault = st.vault_series(EventType.RQST_READ, vault=1)
        assert per_vault.values.tolist() == [2, 0, 0]

    def test_global_series(self):
        st = TraceStats(num_vaults=4)
        st.add(ev(EventType.XBAR_RQST_STALL, cycle=5))
        s = st.global_series(EventType.XBAR_RQST_STALL)
        assert s.values.sum() == 1
        assert st.num_cycles == 6

    def test_growth_beyond_initial_capacity(self):
        st = TraceStats(num_vaults=2, initial_cycles=16)
        st.add(ev(EventType.RQST_WRITE, cycle=1000, vault=0))
        assert st.vault_series(EventType.RQST_WRITE).values[1000] == 1

    def test_figure5_series_keys(self):
        st = TraceStats(num_vaults=4)
        fig = st.figure5_series()
        assert set(fig) == {
            "bank_conflicts", "read_requests", "write_requests",
            "xbar_rqst_stalls", "latency_penalties",
        }

    def test_wrong_series_kind_raises(self):
        st = TraceStats(num_vaults=4)
        with pytest.raises(KeyError):
            st.global_series(EventType.RQST_READ)
        with pytest.raises(KeyError):
            st.vault_series(EventType.XBAR_RQST_STALL)

    def test_vault_matrix_and_utilization(self):
        st = TraceStats(num_vaults=3)
        st.add(ev(EventType.RQST_READ, cycle=0, vault=0))
        st.add(ev(EventType.RQST_WRITE, cycle=1, vault=2))
        m = st.vault_matrix(EventType.RQST_READ)
        assert m.shape == (2, 3)
        util = st.vault_utilization()
        assert util.tolist() == [1, 0, 1]

    def test_summary_totals(self):
        st = TraceStats(num_vaults=2)
        st.add(ev(EventType.RQST_READ, cycle=0, vault=0))
        st.add(ev(EventType.PKT_EXPIRED, cycle=0))  # untracked series: totals only
        assert st.summary()["RQST_READ"] == 1
        assert st.summary()["PKT_EXPIRED"] == 1
        assert st.events_seen == 2

    def test_stats_sink_integration(self):
        st = TraceStats(num_vaults=2)
        t = Tracer(mask=EventType.FIGURE5, sinks=[StatsSink(st)])
        t.emit(ev(EventType.BANK_CONFLICT, cycle=1, vault=1))
        assert st.vault_series(EventType.BANK_CONFLICT).total == 1


class TestParseHelpers:
    def test_replay_into_stats_with_mask(self):
        events = [
            ev(EventType.RQST_READ, cycle=0, vault=0),
            ev(EventType.RQST_WRITE, cycle=0, vault=0),
        ]
        st = replay_into_stats(events, num_vaults=2, mask=EventType.RQST_READ)
        assert st.events_seen == 1

    def test_filter_events(self):
        events = [
            ev(EventType.RQST_READ, cycle=0, dev=0, vault=0),
            ev(EventType.RQST_READ, cycle=5, dev=1, vault=0),
            ev(EventType.RQST_WRITE, cycle=6, dev=0, vault=1),
        ]
        got = list(filter_events(events, mask=EventType.RQST_READ, dev=0))
        assert len(got) == 1
        got = list(filter_events(events, cycle_range=(5, 7)))
        assert len(got) == 2
        got = list(filter_events(events, vault=1))
        assert len(got) == 1
