"""Synchronisation tests: fences and ticket locks on HMC atomics."""

import pytest

from repro.core.simulator import HMCSim
from repro.cpu.assembler import assemble
from repro.cpu.core import GoblinCore, ThreadState
from repro.cpu.isa import Op
from repro.cpu.programs import ticket_lock_kernel
from repro.topology.builder import build_simple


def mk_core(program, num_threads=1, **sim_kw):
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                              capacity=2, **sim_kw))
    if isinstance(program, str):
        program = assemble(program)
    return GoblinCore(sim, program, num_threads=num_threads)


class TestFence:
    def test_fence_assembles(self):
        prog = assemble("fence\nhalt\n")
        assert prog[0].op is Op.FENCE

    def test_fence_with_no_outstanding_stores_is_cheap(self):
        core = mk_core("fence\nhalt\n")
        res = core.run()
        assert res.threads[0].fences == 1
        assert not res.faulted

    def test_fence_waits_for_store_ack(self):
        core = mk_core("""
            li r1, 0x1000
            li r2, 7
            st r2, 0(r1)
            fence
            li r3, 1           ; only reached after the ack
            halt
        """)
        res = core.run()
        t = res.threads[0]
        assert t.read(3) == 1
        assert t.outstanding_stores == 0
        assert not t.fenced

    def test_many_stores_one_fence(self):
        body = "\n".join(f"st r2, {i * 8}(r1)" for i in range(8))
        core = mk_core(f"li r1, 0x2000\nli r2, 5\n{body}\nfence\nhalt\n")
        res = core.run()
        assert res.stores == 8
        assert res.threads[0].outstanding_stores == 0

    def test_fence_parks_thread(self):
        """While fenced, the thread is in WAITING state (other threads
        can use the issue slot)."""
        core = mk_core("""
            li r1, 0x1000
            st r1, 0(r1)
            fence
            halt
        """)
        # Step manually: after executing the fence the thread waits.
        t = core.threads[0]
        for _ in range(3):  # li, st, fence
            core._execute(t)
        assert t.state is ThreadState.WAITING
        assert t.fenced
        core.run()  # completes


class TestTicketLock:
    def test_kernel_requires_aligned_lock(self):
        with pytest.raises(ValueError):
            ticket_lock_kernel(0x1008, 0x2000, 1)

    def test_single_thread_lock(self):
        core = mk_core(ticket_lock_kernel(0x1000, 0x2000, 8))
        res = core.run(max_cycles=100_000)
        assert not res.faulted
        assert core.peek_word(0x2000) == 8

    @pytest.mark.parametrize("threads,iters", [(2, 8), (4, 8), (8, 4)])
    def test_mutual_exclusion_no_lost_updates(self, threads, iters):
        """N threads increment a NON-atomic counter under the lock:
        the final value proves mutual exclusion plus fence visibility."""
        core = mk_core(ticket_lock_kernel(0x1000, 0x2000, iters),
                       num_threads=threads)
        res = core.run(max_cycles=500_000)
        assert not res.faulted
        assert core.peek_word(0x2000) == threads * iters
        # Every thread took exactly `iters` tickets.
        assert core.peek_word(0x1000) == threads * iters  # ticket counter
        assert core.peek_word(0x1008) == threads * iters  # serving counter

    def test_lock_works_with_open_row_and_refresh(self):
        """The lock protocol survives harsher memory timing."""
        core = mk_core(ticket_lock_kernel(0x1000, 0x2000, 4),
                       num_threads=4, row_policy="open",
                       refresh_interval=32, refresh_cycles=4)
        res = core.run(max_cycles=500_000)
        assert not res.faulted
        assert core.peek_word(0x2000) == 16
