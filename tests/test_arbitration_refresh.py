"""Tests for crossbar arbitration fairness and DRAM refresh."""

import numpy as np
import pytest

from repro.core.config import SimConfig
from repro.core.errors import InitError
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.workloads.random_access import RandomAccessConfig, random_access_requests


class TestConfig:
    def test_arbitration_values(self):
        SimConfig(xbar_arbitration="rotating")
        with pytest.raises(InitError):
            SimConfig(xbar_arbitration="lottery")

    def test_refresh_validation(self):
        SimConfig(refresh_interval=64, refresh_cycles=4)
        with pytest.raises(InitError):
            SimConfig(refresh_interval=-1)
        with pytest.raises(InitError):
            SimConfig(refresh_interval=4, refresh_cycles=4)


def run_policy(arbitration, n=1024):
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                              capacity=2, xbar_arbitration=arbitration))
    host = Host(sim)
    cfg = RandomAccessConfig(num_requests=n)
    res = host.run(random_access_requests(2 << 30, cfg))
    return sim, res


class TestArbitration:
    def test_both_policies_complete(self):
        for policy in ("fixed", "rotating"):
            sim, res = run_policy(policy)
            assert res.responses_received == 1024
            assert res.errors_received == 0

    def test_rotating_balances_link_latency(self):
        """Under contention, rotating service narrows the per-link
        mean-latency spread relative to fixed priority."""
        def spread(policy):
            sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                      capacity=2, queue_depth=8,
                                      xbar_arbitration=policy))
            host = Host(sim)
            cfg = RandomAccessConfig(num_requests=2048)
            host.run(random_access_requests(2 << 30, cfg))
            # Per-link mean latency from the per-link tag-pool contexts
            # is gone after release; use per-link served counts instead:
            served = [x.routed_local for x in sim.devices[0].xbars]
            return max(served) - min(served)

        # Rotation must not make the imbalance worse.
        assert spread("rotating") <= spread("fixed") + 32

    def test_determinism_per_policy(self):
        a = run_policy("rotating")[1].cycles
        b = run_policy("rotating")[1].cycles
        assert a == b


class TestRefresh:
    def test_refresh_counts_accumulate(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2, refresh_interval=16,
                                  refresh_cycles=2))
        sim.clock(64)
        counts = [v.refresh_count for v in sim.devices[0].vaults]
        assert all(c == 4 for c in counts)  # 64 / 16 per vault

    def test_refresh_staggered_across_vaults(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2, refresh_interval=16,
                                  refresh_cycles=4))
        sim.clock(1)  # cycle 0: vaults with id % 16 == 0 refresh
        busy = [v.banks[0].is_busy(1) for v in sim.devices[0].vaults]
        assert busy.count(True) == 1  # only vault 0 refreshed at cycle 0

    def test_refresh_costs_throughput(self):
        def cycles(interval, rc):
            sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                      capacity=2, refresh_interval=interval,
                                      refresh_cycles=rc))
            host = Host(sim)
            cfg = RandomAccessConfig(num_requests=2048)
            return host.run(random_access_requests(2 << 30, cfg)).cycles

        assert cycles(32, 16) > cycles(0, 0)

    def test_refresh_never_loses_requests(self):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8,
                                  capacity=2, refresh_interval=8,
                                  refresh_cycles=4))
        host = Host(sim)
        res = host.run([(CMD.WR64, i * 64, [i] * 8) for i in range(128)]
                       + [(CMD.RD64, i * 64, None) for i in range(128)])
        assert res.responses_received == 256
        assert res.errors_received == 0
