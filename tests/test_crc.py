"""Unit tests for the packet-tail CRC (repro.packets.crc)."""

import pytest
from hypothesis import given, strategies as st

from repro.packets.crc import POLY, crc32_koopman, crc_words, verify


def test_poly_is_koopman_crc32k():
    assert POLY == 0x741B8CD7


def test_empty_input_yields_zero():
    assert crc32_koopman(b"") == 0


def test_deterministic():
    data = b"hybrid memory cube"
    assert crc32_koopman(data) == crc32_koopman(data)


def test_known_stability_value():
    """Pin the implementation: a change in table/poly breaks traces."""
    assert crc32_koopman(b"HMC") == crc32_koopman(bytes([0x48, 0x4D, 0x43]))
    # Regression value computed once from this implementation.
    assert crc32_koopman(b"\x00") == 0


def test_single_bit_sensitivity():
    a = crc32_koopman(b"\x01" + b"\x00" * 15)
    b = crc32_koopman(b"\x00" * 16)
    assert a != b


def test_crc_words_matches_manual_serialisation():
    words = [0x0123456789ABCDEF, 0xFEDCBA9876543210]
    manual = b"".join(w.to_bytes(8, "little") for w in words)
    assert crc_words(words) == crc32_koopman(manual)


def test_verify():
    words = [1, 2, 3]
    c = crc_words(words)
    assert verify(words, c)
    assert not verify(words, c ^ 1)


def test_result_fits_32_bits():
    assert 0 <= crc32_koopman(b"x" * 1000) <= 0xFFFFFFFF


@given(st.binary(max_size=64), st.integers(min_value=0, max_value=63))
def test_any_bit_flip_changes_crc(data, bitpos):
    """CRC-32 detects all single-bit errors by construction."""
    if not data:
        return
    byte_i = (bitpos // 8) % len(data)
    flipped = bytearray(data)
    flipped[byte_i] ^= 1 << (bitpos % 8)
    assert crc32_koopman(bytes(flipped)) != crc32_koopman(data)


@given(st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), max_size=18))
def test_crc_words_deterministic_property(words):
    assert crc_words(words) == crc_words(list(words))
