"""Tests for the sequential prefetcher and the write combiner."""

import pytest

from repro.core.simulator import HMCSim
from repro.host.coalesce import WriteCombiner
from repro.host.host import Host
from repro.host.prefetch import SequentialPrefetcher
from repro.packets.commands import CMD
from repro.topology.builder import build_simple


def mk_host():
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
    return sim, Host(sim)


def seed_memory(sim, base, blocks, block=64):
    """Write recognisable data directly into the device."""
    dev = sim.devices[0]
    for i in range(blocks):
        addr = base + i * block
        d = dev.amap.decode(addr)
        rel = d.dram * dev.amap.block_size + d.offset
        dev.vaults[d.vault].banks[d.bank].write(rel, [addr + k for k in range(block // 8)])


class TestPrefetcher:
    def test_sequential_stream_hits(self):
        sim, host = mk_host()
        seed_memory(sim, 0x10000, 64)
        pf = SequentialPrefetcher(host, degree=4)
        for i in range(32):
            data = pf.read(0x10000 + i * 64)
            assert data[0] == 0x10000 + i * 64  # correct data either way
        pf.drain()
        assert pf.stats.hits > 16          # the stream mostly hits
        assert pf.stats.hit_rate > 0.5
        assert pf.stats.prefetches_issued > 0

    def test_random_stream_mostly_misses(self):
        sim, host = mk_host()
        seed_memory(sim, 0, 256)
        pf = SequentialPrefetcher(host, degree=4)
        import random
        rng = random.Random(3)
        addrs = [rng.randrange(256) * 64 for _ in range(32)]
        for a in addrs:
            pf.read(a)
        pf.drain()
        assert pf.stats.hit_rate < 0.3

    def test_data_correctness_on_hits(self):
        """Prefetched data equals demand-read data, word for word."""
        sim, host = mk_host()
        seed_memory(sim, 0x4000, 32)
        pf = SequentialPrefetcher(host, degree=8)
        for i in range(32):
            addr = 0x4000 + i * 64
            assert pf.read(addr) == [addr + k for k in range(8)]
        pf.drain()

    def test_alignment_enforced(self):
        sim, host = mk_host()
        pf = SequentialPrefetcher(host)
        with pytest.raises(ValueError):
            pf.read(12)

    def test_parameter_validation(self):
        sim, host = mk_host()
        with pytest.raises(ValueError):
            SequentialPrefetcher(host, degree=0)
        with pytest.raises(ValueError):
            SequentialPrefetcher(host, block_bytes=24)

    def test_buffer_eviction_counts_waste(self):
        sim, host = mk_host()
        seed_memory(sim, 0, 512)
        pf = SequentialPrefetcher(host, degree=8, buffer_blocks=4)
        # Two interleaved streams overflow the 4-block buffer.
        for i in range(16):
            pf.read(i * 64)
            pf.read(0x4000 + i * 64)
        pf.drain()
        assert pf.stats.wasted > 0

    def test_prefetching_reduces_dependent_read_cycles(self):
        """The payoff: a sequential sweep completes in fewer cycles with
        prefetching than with blocking demand reads."""
        def sweep(prefetch):
            sim, host = mk_host()
            seed_memory(sim, 0, 64)
            pf = SequentialPrefetcher(host, degree=8 if prefetch else 1,
                                      buffer_blocks=16)
            if not prefetch:
                pf._issue_prefetches = lambda addr: None  # demand only
            for i in range(64):
                pf.read(i * 64)
            pf.drain()
            return sim.clock_value

        assert sweep(True) < sweep(False)


class TestWriteCombiner:
    def test_contiguous_atoms_coalesce(self):
        sim, host = mk_host()
        wc = WriteCombiner(host)
        for i in range(4):  # one 64-byte block of atoms
            wc.write(0x1000 + i * 16, [i, i + 100])
        n = wc.flush()
        assert n == 1  # a single WR64
        assert wc.stats.flits_out == 5
        assert wc.stats.flits_naive == 8

    def test_data_correctness_after_drain(self):
        sim, host = mk_host()
        wc = WriteCombiner(host)
        for i in range(16):
            wc.write(0x2000 + i * 16, [i, i * 2])
        wc.drain()
        dev = sim.devices[0]
        for i in range(16):
            addr = 0x2000 + i * 16
            d = dev.amap.decode(addr)
            rel = d.dram * dev.amap.block_size + d.offset
            assert dev.vaults[d.vault].banks[d.bank].read(rel, 16) == [i, i * 2]

    def test_runs_split_at_block_alignment(self):
        """A run never crosses the device block line (vault boundary)."""
        sim, host = mk_host()
        wc = WriteCombiner(host)
        # Atoms 0x30..0x50: crosses the 64-byte line at 0x40.
        for addr in (0x30, 0x40, 0x50):
            wc.write(addr, [1, 2])
        runs = wc._runs()
        assert [r[0] for r in runs] == [0x30, 0x40]
        assert len(runs[1][1]) == 4  # 0x40+0x50 merged

    def test_sparse_writes_stay_separate(self):
        sim, host = mk_host()
        wc = WriteCombiner(host)
        wc.write(0x0, [1, 1])
        wc.write(0x100, [2, 2])
        assert len(wc._runs()) == 2

    def test_rewrite_combines_in_place(self):
        sim, host = mk_host()
        wc = WriteCombiner(host)
        wc.write(0x10, [1, 1])
        wc.write(0x10, [9, 9])  # overwrite staged data
        wc.drain()
        dev = sim.devices[0]
        d = dev.amap.decode(0x10)
        rel = d.dram * dev.amap.block_size + d.offset
        assert dev.vaults[d.vault].banks[d.bank].read(rel, 16) == [9, 9]
        assert wc.stats.requests_out == 1

    def test_auto_flush_at_capacity(self):
        sim, host = mk_host()
        wc = WriteCombiner(host, capacity_atoms=4)
        for i in range(5):
            wc.write(i * 4096, [i, i])  # non-contiguous: 1 atom each
        assert wc.stats.requests_out >= 4  # capacity flush happened
        assert wc.staged_atoms == 1

    def test_flit_savings_on_streams(self):
        sim, host = mk_host()
        wc = WriteCombiner(host)
        for i in range(64):
            wc.write(i * 16, [i, i])
        wc.drain()
        # 64 atoms -> 16 WR64s: 80 FLITs vs 128 naive.
        assert wc.stats.requests_out == 16
        assert wc.stats.flit_savings == pytest.approx(1 - 80 / 128)

    def test_validation(self):
        sim, host = mk_host()
        wc = WriteCombiner(host)
        with pytest.raises(ValueError):
            wc.write(0x8, [1, 2])
        with pytest.raises(ValueError):
            wc.write(0x0, [1])
        with pytest.raises(ValueError):
            WriteCombiner(host, capacity_atoms=0)
