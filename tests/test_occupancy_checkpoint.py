"""Tests for occupancy sampling and checkpoint/restore."""

import numpy as np
import pytest

from repro.analysis.occupancy import OccupancySampler, sample_run
from repro.core.checkpoint import (
    MAGIC,
    load,
    restore,
    restore_bundle,
    save,
    snapshot,
    snapshot_bundle,
)
from repro.core.errors import CheckpointError
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.packets.packet import build_memrequest
from repro.topology.builder import build_simple
from repro.trace.events import EventType
from repro.trace.tracer import MemorySink
from repro.workloads.random_access import RandomAccessConfig, random_access_requests


def mk_sim():
    return build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))


class TestOccupancySampler:
    def test_samples_accumulate(self):
        sim = mk_sim()
        sampler = OccupancySampler(sim)
        for _ in range(5):
            sim.clock()
            sampler.sample()
        assert sampler.samples == 5
        assert sampler.vault_matrix().shape == (5, 16)
        assert sampler.xbar_matrix().shape == (5, 4)
        assert len(sampler.cycles()) == 5

    def test_growth_beyond_initial(self):
        sim = mk_sim()
        sampler = OccupancySampler(sim, initial=4)
        for _ in range(20):
            sampler.sample()
        assert sampler.samples == 20

    def test_occupancy_reflects_queued_traffic(self):
        sim = mk_sim()
        sampler = OccupancySampler(sim)
        for i in range(8):
            sim.send(build_memrequest(0, 0x40 * i, i, CMD.RD64, link=0))
        sampler.sample()
        assert sampler.xbar_matrix()[0, 0] == 8  # all in link 0's queue

    def test_sample_run_end_to_end(self):
        sim = mk_sim()
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=512)
        res, sampler = sample_run(
            sim, host, random_access_requests(2 << 30, cfg))
        assert res.responses_received == 512
        assert sampler.samples == res.cycles
        assert sampler.peak_vault_occupancy() > 0
        assert 0 <= sampler.hottest_vault() < 16
        assert sampler.mean_vault_occupancy() >= 0

    def test_render_heatmap(self):
        sim = mk_sim()
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=256)
        _, sampler = sample_run(sim, host, random_access_requests(2 << 30, cfg))
        text = sampler.render_heatmap()
        assert "vault  0 |" in text
        assert text.count("|") == 32  # 16 vaults x 2 pipes

    def test_empty_sampler(self):
        sampler = OccupancySampler(mk_sim())
        assert sampler.peak_vault_occupancy() == 0
        assert sampler.hottest_vault() == -1
        assert sampler.render_heatmap() == "(no samples)"


class TestCheckpoint:
    def _advance(self, sim, n, offset=0):
        for i in range(n):
            sim.send(build_memrequest(0, (offset + i) * 64, i % 512, CMD.RD64,
                                      link=i % 4))
            sim.clock()
        sim.clock(5)

    def test_snapshot_restore_preserves_state(self):
        sim = mk_sim()
        self._advance(sim, 10)
        blob = snapshot(sim)
        sim2 = restore(blob)
        assert sim2.clock_value == sim.clock_value
        assert sim2.packets_sent == sim.packets_sent
        assert sim2.stats() == sim.stats()

    def test_restored_run_continues_identically(self):
        """Determinism across checkpoint: original and restored sims
        produce identical futures."""
        a = mk_sim()
        self._advance(a, 20)
        blob = snapshot(a)
        b = restore(blob)
        # Drive both with the identical continuation.
        for sim in (a, b):
            self._advance(sim, 15, offset=1000)
            sim.recv_all()
        assert a.stats() == b.stats()
        assert a.clock_value == b.clock_value

    def test_snapshot_keeps_original_tracer(self):
        sim = mk_sim()
        sink = sim.trace_to_memory(EventType.STANDARD)
        self._advance(sim, 3)
        events_before = len(sink.events)
        snapshot(sim)
        # The live sim still traces through its original sink.
        self._advance(sim, 3)
        assert len(sink.events) > events_before

    def test_restored_tracer_is_sinkless_with_mask(self):
        sim = mk_sim()
        sim.trace_to_memory(EventType.FIGURE5)
        sim2 = restore(snapshot(sim))
        assert sim2.tracer.mask == EventType.FIGURE5
        assert sim2.tracer.sinks == []
        sim2.add_trace_sink(MemorySink())  # and sinks reattach fine
        sim2.clock()

    def test_memory_contents_survive(self):
        sim = mk_sim()
        sim.send(build_memrequest(0, 0x4000, 1, CMD.WR64,
                                  payload=[7] * 8, link=0))
        sim.clock(10)
        sim.recv_all()
        sim2 = restore(snapshot(sim))
        sim2.send(build_memrequest(0, 0x4000, 2, CMD.RD64, link=0))
        sim2.clock(10)
        assert list(sim2.recv().payload) == [7] * 8

    def test_bundle_preserves_shared_references(self):
        sim = mk_sim()
        host = Host(sim)
        host.run([(CMD.RD64, i * 64, None) for i in range(16)])
        blob = snapshot_bundle(sim, host)
        sim2, (host2,) = restore_bundle(blob)
        assert host2.sim is sim2  # shared reference survived
        res = host2.run([(CMD.RD64, i * 64, None) for i in range(16)])
        assert res.responses_received == 16

    def test_save_load_file(self, tmp_path):
        sim = mk_sim()
        self._advance(sim, 5)
        path = tmp_path / "ckpt.bin"
        save(sim, str(path))
        sim2 = load(str(path))
        assert sim2.clock_value == sim.clock_value

    def test_restore_rejects_garbage(self):
        import pickle
        with pytest.raises(CheckpointError):
            restore(pickle.dumps({"not": "a sim"}))


class TestBlobHeader:
    """Satellite: versioned magic header + typed CheckpointError."""

    def test_snapshot_starts_with_magic(self):
        assert snapshot(mk_sim()).startswith(MAGIC)
        assert snapshot_bundle(mk_sim()).startswith(MAGIC)

    def test_restore_rejects_missing_magic(self):
        import pickle
        with pytest.raises(CheckpointError, match="bad magic"):
            restore(pickle.dumps(mk_sim.__name__))

    def test_restore_rejects_wrong_version(self):
        blob = snapshot(mk_sim())
        bad = MAGIC[:-1] + bytes([MAGIC[-1] + 1]) + blob[len(MAGIC):]
        with pytest.raises(CheckpointError, match="version"):
            restore(bad)

    def test_restore_rejects_truncated_payload(self):
        blob = snapshot(mk_sim())
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            restore(blob[: len(blob) // 2])

    def test_restore_rejects_short_blob(self):
        with pytest.raises(CheckpointError, match="truncated"):
            restore(MAGIC[:4])

    def test_restore_rejects_non_bytes(self):
        with pytest.raises(CheckpointError, match="expected bytes"):
            restore({"not": "bytes"})

    def test_restore_bundle_rejects_non_bundle(self):
        # A valid *snapshot* blob is not a valid *bundle* blob.
        with pytest.raises(CheckpointError, match="bundle"):
            restore_bundle(snapshot(mk_sim()))

    def test_wrong_payload_type_is_checkpoint_error(self):
        import pickle
        with pytest.raises(CheckpointError, match="HMCSim"):
            restore(MAGIC + pickle.dumps({"not": "a sim"}))

    def test_checkpoint_error_is_typed(self):
        from repro.core.errors import E_INVAL, HMCError
        assert issubclass(CheckpointError, HMCError)
        assert CheckpointError.errno == E_INVAL

    def test_save_load_round_trips_header(self, tmp_path):
        sim = mk_sim()
        path = tmp_path / "ckpt.bin"
        save(sim, str(path))
        assert path.read_bytes().startswith(MAGIC)
        assert load(str(path)).clock_value == sim.clock_value
