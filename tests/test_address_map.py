"""Unit tests for address mapping (repro.addressing.address_map)."""

import pytest

from repro.addressing.address_map import (
    ADDRESS_FIELD_BITS,
    AddressMap,
    AddressMapMode,
    default_map,
)

GB = 1 << 30


def vb_map(**kw):
    defaults = dict(num_vaults=16, num_banks=8, block_size=64, capacity_bytes=2 * GB)
    defaults.update(kw)
    return AddressMap(**defaults)


class TestConstruction:
    def test_field_widths(self):
        m = vb_map()
        assert m.offset_bits == 6
        assert m.vault_bits == 4
        assert m.bank_bits == 3
        assert m.dram_bits == 31 - 6 - 4 - 3
        assert m.total_bits == 31

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            vb_map(num_vaults=12)
        with pytest.raises(ValueError):
            vb_map(num_banks=10)
        with pytest.raises(ValueError):
            vb_map(capacity_bytes=3 * GB)

    def test_block_size_must_cover_atom(self):
        with pytest.raises(ValueError):
            vb_map(block_size=8)

    def test_capacity_exceeding_field_rejected(self):
        with pytest.raises(ValueError):
            vb_map(capacity_bytes=1 << 35)

    def test_capacity_too_small_rejected(self):
        with pytest.raises(ValueError):
            vb_map(capacity_bytes=1 << 10)

    def test_custom_field_order(self):
        m = vb_map(field_order=("bank", "dram", "vault"))
        assert m.mode == "custom"
        assert m.field_order == ("bank", "dram", "vault")

    def test_bad_custom_order_rejected(self):
        with pytest.raises(ValueError):
            vb_map(field_order=("bank", "bank", "vault"))


class TestDefaultLowInterleave:
    def test_sequential_blocks_interleave_vaults_first(self):
        """Paper III.B: sequential addresses interleave across vaults
        first, then across banks within a vault."""
        m = vb_map()
        vaults = [m.decode(i * m.block_size).vault for i in range(m.num_vaults)]
        assert vaults == list(range(m.num_vaults))
        # The next stripe wraps vaults and bumps the bank.
        d = m.decode(m.num_vaults * m.block_size)
        assert d.vault == 0
        assert d.bank == 1

    def test_offset_extraction(self):
        m = vb_map()
        d = m.decode(0x25)
        assert d.offset == 0x25
        assert d.vault == 0

    def test_bank_vault_mode_interleaves_banks_first(self):
        m = vb_map(mode=AddressMapMode.BANK_VAULT)
        banks = [m.decode(i * m.block_size).bank for i in range(m.num_banks)]
        assert banks == list(range(m.num_banks))

    def test_linear_mode_keeps_ranges_in_one_vault(self):
        m = vb_map(mode=AddressMapMode.LINEAR)
        # A long contiguous range stays in vault 0.
        for i in range(1000):
            assert m.decode(i * m.block_size).vault == 0


class TestDecodeEncode:
    def test_bijection_on_samples(self):
        m = vb_map()
        for addr in (0, 63, 64, 0x12345, m.capacity_bytes - 1):
            d = m.decode(addr)
            assert m.encode(d.vault, d.bank, d.dram, d.offset) == addr

    def test_decode_out_of_range(self):
        m = vb_map()
        with pytest.raises(ValueError):
            m.decode(m.capacity_bytes)
        with pytest.raises(ValueError):
            m.decode(-1)

    def test_encode_validates_fields(self):
        m = vb_map()
        with pytest.raises(ValueError):
            m.encode(vault=16, bank=0)
        with pytest.raises(ValueError):
            m.encode(vault=0, bank=8)
        with pytest.raises(ValueError):
            m.encode(vault=0, bank=0, offset=64)

    def test_fast_extractors_match_decode(self):
        m = vb_map()
        for addr in (0, 1 << 20, 0x7FFFFFC0):
            d = m.decode(addr)
            assert m.vault_of(addr) == d.vault
            assert m.bank_of(addr) == d.bank
            assert m.dram_of(addr) == d.dram

    def test_in_range(self):
        m = vb_map()
        assert m.in_range(0)
        assert m.in_range(m.capacity_bytes - 1)
        assert not m.in_range(m.capacity_bytes)


class TestDefaultMapFactory:
    def test_four_link_uses_32_bit_field(self):
        m = default_map(4, 16, 8, 2 * GB)
        assert m.total_bits <= 32

    def test_eight_link_allows_8gb(self):
        m = default_map(8, 32, 16, 8 * GB)
        assert m.total_bits == 33

    def test_four_link_rejects_8gb(self):
        with pytest.raises(ValueError):
            default_map(4, 16, 8, 8 * GB)

    def test_bad_link_count(self):
        with pytest.raises(ValueError):
            default_map(6, 16, 8, 2 * GB)

    def test_field_cap_is_34_bits(self):
        assert ADDRESS_FIELD_BITS == 34

    def test_default_is_vault_first(self):
        m = default_map(4, 16, 8, 2 * GB)
        assert m.mode is AddressMapMode.VAULT_BANK
        assert m.field_order[0] == "vault"
