"""Property tests over randomly generated topologies.

The simulator must be "topologically agnostic" (§IV.2): any connected
arrangement of chain links routes correctly, and any disconnected one
degrades to error responses — never hangs, never drops packets
silently.  Hypothesis generates random spanning-tree-plus-extras
topologies and random traffic over them.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.errors import TopologyError
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.packets.packet import ErrStat
from repro.topology.validate import diagnose


@st.composite
def random_topology(draw):
    """A random sim: spanning tree over n devices + optional extra links."""
    n = draw(st.integers(2, 5))
    sim = HMCSim(num_devs=n, num_links=4, num_banks=8, capacity=2)
    sim.attach_host(0, 0)
    # Spanning tree: each device d>=1 connects to a random earlier one.
    for d in range(1, n):
        parent = draw(st.integers(0, d - 1))
        try:
            a = next(l.link_id for l in sim.devices[parent].links
                     if not l.configured)
            b = next(l.link_id for l in sim.devices[d].links
                     if not l.configured)
        except StopIteration:
            continue  # parent out of links: d stays unreachable
        sim.connect(parent, a, d, b)
    # Optional extra edges (cycles).
    for _ in range(draw(st.integers(0, 2))):
        x = draw(st.integers(0, n - 1))
        y = draw(st.integers(0, n - 1))
        if x == y:
            continue
        try:
            a = next(l.link_id for l in sim.devices[x].links if not l.configured)
            b = next(l.link_id for l in sim.devices[y].links if not l.configured)
            sim.connect(x, a, y, b)
        except (StopIteration, TopologyError):
            continue
    return sim


@given(sim=random_topology(), data=st.data())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_traffic_over_random_topology(sim, data):
    """Every request to a reachable cube completes OK; every request to
    an unreachable cube returns an UNROUTABLE error; nothing hangs."""
    n = len(sim.devices)
    report = diagnose(sim)
    reachable = set(range(n)) - set(report.unreachable_devices)
    host = Host(sim)
    targets = data.draw(st.lists(st.integers(0, n - 1), min_size=1, max_size=12))
    expected_errors = sum(1 for t in targets if t not in reachable)
    stream = [(CMD.RD64, (i * 977 % 1024) * 64, None)
              for i, _ in enumerate(targets)]
    for (cmd, addr, payload), cub in zip(stream, targets):
        # Send one at a time (run() targets a single cube).
        tag = None
        spins = 0
        while tag is None:
            tag = host.send_request(cmd, addr, cub=cub)
            if tag is None:
                sim.clock()
                host.drain_responses()
                spins += 1
                assert spins < 1000, "injection starved"
    for _ in range(2000):
        sim.clock()
        host.drain_responses()
        if host.outstanding == 0:
            break
    assert host.outstanding == 0, "responses never returned"
    assert host.received == len(targets)
    assert host.errors == expected_errors
    if expected_errors:
        assert host.error_stats.get(int(ErrStat.UNROUTABLE), 0) == expected_errors
    assert sim.pending_packets == 0


@given(sim=random_topology())
@settings(max_examples=20, deadline=None)
def test_diagnose_consistent_with_routing(sim):
    """diagnose()'s reachability agrees with the engine's route tables."""
    report = diagnose(sim)
    for d in range(len(sim.devices)):
        if d == 0:
            continue  # the root itself
        routed = sim.next_hop(0, d) is not None
        assert routed == (d not in report.unreachable_devices)
