"""Unit tests for banks and DRAMs (repro.core.bank)."""

import pytest

from repro.core.bank import ATOM_BYTES, Bank, COLUMN_FETCH_BYTES, DRAM


@pytest.fixture
def bank():
    return Bank(bank_id=0, capacity_bytes=1 << 20, num_drams=8)


class TestConstruction:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Bank(0, 0)
        with pytest.raises(ValueError):
            Bank(0, 24)  # not a multiple of 16

    def test_dram_slices(self, bank):
        assert len(bank.drams) == 8
        assert all(isinstance(d, DRAM) for d in bank.drams)
        assert [d.dram_id for d in bank.drams] == list(range(8))


class TestDataPath:
    def test_unwritten_reads_zero(self, bank):
        assert bank.read(0, 64) == [0] * 8

    def test_write_read_round_trip(self, bank):
        words = list(range(1, 9))
        bank.write(0x40, words)
        assert bank.read(0x40, 64) == words

    def test_partial_overlap(self, bank):
        bank.write(0, [1, 2, 3, 4])  # two atoms at 0x00, 0x10
        bank.write(16, [9, 9])       # overwrite second atom
        assert bank.read(0, 32) == [1, 2, 9, 9]

    def test_words_are_masked_to_64_bits(self, bank):
        bank.write(0, [1 << 64, -1 & ((1 << 65) - 1)])
        lo, hi = bank.read(0, 16)
        assert lo == 0
        assert hi == (1 << 64) - 1

    def test_alignment_enforced(self, bank):
        with pytest.raises(ValueError):
            bank.read(8, 16)
        with pytest.raises(ValueError):
            bank.read(0, 24)
        with pytest.raises(ValueError):
            bank.write(4, [1, 2])

    def test_bounds_enforced(self, bank):
        with pytest.raises(ValueError):
            bank.read(bank.capacity_bytes - 16, 32)
        with pytest.raises(ValueError):
            bank.read(-16, 16)

    def test_write_requires_whole_atoms(self, bank):
        with pytest.raises(ValueError):
            bank.write(0, [1])

    def test_sparse_storage(self, bank):
        bank.write(0x1000, [5, 6])
        assert bank.touched_bytes == ATOM_BYTES
        bank.read(0x2000, 64)  # reads do not materialise blocks
        assert bank.touched_bytes == ATOM_BYTES


class TestAtomics:
    def test_add16_returns_old_value(self, bank):
        bank.write(0, [10, 20])
        old = bank.atomic_add16(0, [1, 2])
        assert old == [10, 20]
        assert bank.read(0, 16) == [11, 22]

    def test_add16_wraps_64_bits(self, bank):
        bank.write(0, [(1 << 64) - 1, 0])
        bank.atomic_add16(0, [1, 0])
        assert bank.read(0, 16) == [0, 0]

    def test_add16_operand_arity(self, bank):
        with pytest.raises(ValueError):
            bank.atomic_add16(0, [1])

    def test_2add8_counts_as_atomic(self, bank):
        bank.atomic_2add8(0, [3, 4])
        assert bank.atomics == 1
        assert bank.read(0, 16) == [3, 4]


class TestBusyWindow:
    def test_busy_tracking(self, bank):
        assert not bank.is_busy(0)
        bank.occupy(cycle=10, busy_cycles=3)
        assert bank.is_busy(10)
        assert bank.is_busy(12)
        assert not bank.is_busy(13)

    def test_zero_busy_cycles(self, bank):
        bank.occupy(cycle=5, busy_cycles=0)
        assert not bank.is_busy(5)


class TestAccounting:
    def test_access_counters(self, bank):
        bank.write(0, [1, 2])
        bank.read(0, 16)
        bank.atomic_add16(0, [1, 1])
        assert (bank.reads, bank.writes, bank.atomics) == (1, 1, 1)
        assert bank.total_accesses == 3

    def test_column_fetch_counting(self, bank):
        """Paper III.A: accesses are performed in 32-byte column fetches."""
        bank.read(0, 64)
        assert bank.column_fetches == 64 // COLUMN_FETCH_BYTES
        bank.read(0, 16)  # one atom still needs a full fetch
        assert bank.column_fetches == 2 + 1

    def test_dram_slices_participate(self, bank):
        bank.read(0, 16)
        assert all(d.accesses == 1 for d in bank.drams)

    def test_reset(self, bank):
        bank.write(0, [1, 2])
        bank.occupy(0, 10)
        bank.reset()
        assert bank.read(0, 16) == [0, 0]
        assert bank.writes == 0  # reset cleared, the read above re-counts
        assert not bank.is_busy(0)
