"""Property tests for the flat hot core (hypothesis satellite).

Three invariants the struct-of-arrays refactor must preserve:

* an arena-built record is observably identical to the fresh packet the
  public builders would have produced — including after the record has
  lived a previous life with link-retry sideband stamped onto it;
* the freelist never hands out a record that is still live, across any
  interleaving of acquires and releases (and double releases are inert);
* the paged array-backed :class:`~repro.core.bank.Bank` matches a plain
  dict-of-atoms model under arbitrary operation sequences.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.bank import ATOM_BYTES, ATOM_WORDS, Bank
from repro.packets.arena import PacketArena
from repro.packets.commands import CMD
from repro.packets.packet import (
    MAX_TAG,
    build_memrequest,
    build_response,
    request_flits,
)

_MASK64 = (1 << 64) - 1

#: Request commands the hot path builds (reads, writes, atomics).
_REQ_CMDS = [
    CMD.RD16, CMD.RD64, CMD.RD128,
    CMD.WR16, CMD.WR64, CMD.WR128,
    CMD.BWR, CMD.ADD16, CMD.TWOADD8,
]

_word = st.integers(min_value=0, max_value=_MASK64)


def _request_args():
    """Strategy for (cmd, cub, addr, tag, payload, link) builder args."""
    return st.tuples(
        st.sampled_from(_REQ_CMDS),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=(1 << 20) - 16).map(lambda a: a & ~0xF),
        st.integers(min_value=0, max_value=MAX_TAG),
        st.lists(_word, min_size=0, max_size=16),
        st.integers(min_value=0, max_value=3),
    )


_VISIBLE_FIELDS = (
    "cmd", "cub", "tag", "addr", "payload", "slid", "dinv", "errstat",
    "seq", "rrp", "frp", "rtc", "pb", "num_flits",
    "cls", "is_response", "expects_response", "is_special",
)


def _assert_same_packet(pooled, fresh):
    for name in _VISIBLE_FIELDS:
        assert getattr(pooled, name) == getattr(fresh, name), name
    assert pooled.encode() == fresh.encode()


class TestArenaRoundTrip:
    @given(_request_args())
    @settings(max_examples=60, deadline=None)
    def test_pooled_request_matches_fresh(self, args):
        cmd, cub, addr, tag, payload, link = args
        arena = PacketArena(capacity=4)
        pooled = arena.build_request(cub, addr, tag, cmd, payload=payload, link=link)
        fresh = build_memrequest(cub, addr, tag, cmd, payload=payload, link=link)
        _assert_same_packet(pooled, fresh)
        assert arena.pooled_builds == 1 and arena.fresh_builds == 0

    @given(_request_args())
    @settings(max_examples=60, deadline=None)
    def test_recycled_record_forgets_previous_life(self, args):
        """A released record re-adopts cleanly even after the link-retry
        layer stamped wire sideband onto it (the flow.py hazard)."""
        cmd, cub, addr, tag, payload, link = args
        arena = PacketArena(capacity=1)
        first = arena.build_request(0, 0, 1, CMD.WR64, payload=[7] * 8)
        # Simulate an eventful in-flight life.
        first.seq, first.frp, first.rrp, first.rtc, first.pb = 3, 9, 5, 2, 1
        first.hops = 4
        first.route_stack.append((0, 0))
        first.injected_at = 123
        assert arena.release(first)
        pooled = arena.build_request(cub, addr, tag, cmd, payload=payload, link=link)
        assert pooled is first  # capacity-1 pool must recycle
        fresh = build_memrequest(cub, addr, tag, cmd, payload=payload, link=link)
        _assert_same_packet(pooled, fresh)
        assert pooled.route_stack == [] and pooled.hops == 0
        assert pooled.injected_at == -1 and pooled.delivered_from is None

    @given(
        st.sampled_from([CMD.RD16, CMD.RD64, CMD.RD128, CMD.ADD16]),
        st.integers(min_value=0, max_value=MAX_TAG),
        st.lists(_word, min_size=0, max_size=16),
    )
    @settings(max_examples=60, deadline=None)
    def test_pooled_reply_matches_fresh(self, cmd, tag, data):
        arena = PacketArena(capacity=2)
        request = build_memrequest(1, 0x40, tag, cmd)
        need = (request_flits(cmd) - 1) * 2  # data the vault would supply
        data = (data + [0] * need)[:need] if need else []
        pooled = arena.build_reply(request, data or None)
        fresh = build_response(request, data or None)
        _assert_same_packet(pooled, fresh)
        assert pooled.src_cub == fresh.src_cub


class TestFreelistNeverDoubleAllocates:
    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_random_interleaving(self, ops):
        """op 0-1: acquire; op 2: release oldest live; op 3: double-release."""
        arena = PacketArena(capacity=4)
        live = []
        released = []
        for op in ops:
            if op <= 1:
                p = arena.build_request(0, 0, len(live) % 8, CMD.RD16)
                # A pooled record handed out must not already be live.
                assert all(p is not q for q in live)
                live.append(p)
                # A re-adopted record is live again, so it leaves the
                # double-release candidate set.
                released = [q for q in released if q is not p]
            elif op == 2 and live:
                p = live.pop(0)
                assert arena.release(p) == arena.owns(p)
                released.append(p)
            elif op == 3 and released:
                assert not arena.release(released[-1])  # double release inert
        assert len({id(p) for p in live}) == len(live)
        # Conservation: every owned record is free, live here, or was
        # fresh-built outside the pool.
        pooled_live = sum(1 for p in live if arena.owns(p))
        assert arena.free_records + pooled_live == arena.capacity

    def test_foreign_packets_ignored(self):
        arena = PacketArena(capacity=2)
        foreign = build_memrequest(0, 0, 0, CMD.RD16)
        assert not arena.release(foreign)
        assert arena.free_records == 2


def _dict_model_ops():
    atoms = st.integers(min_value=0, max_value=63)  # 1 KiB bank = 64 atoms
    return st.lists(
        st.one_of(
            st.tuples(st.just("write"), atoms,
                      st.integers(min_value=1, max_value=4),
                      st.lists(_word, min_size=8, max_size=8)),
            st.tuples(st.just("read"), atoms,
                      st.integers(min_value=1, max_value=4)),
            st.tuples(st.just("bwr"), atoms, st.integers(min_value=0, max_value=1),
                      _word, st.integers(min_value=0, max_value=0xFF)),
            st.tuples(st.just("add16"), atoms, st.lists(_word, min_size=2, max_size=2)),
            st.tuples(st.just("set"), atoms, _word, _word),
        ),
        min_size=1,
        max_size=40,
    )


class TestBankMatchesDictModel:
    """Array-backed paged Bank vs a plain dict-of-atoms reference."""

    @given(_dict_model_ops())
    @settings(max_examples=80, deadline=None)
    def test_random_sequences(self, ops):
        # Page size forced small relative to capacity isn't configurable;
        # a 1 KiB bank fits one page, so also run a capacity that spans
        # multiple pages below (test_page_crossing_sequences).
        bank = Bank(0, 64 * ATOM_BYTES)
        model = {}  # atom -> (w0, w1); presence == touched
        for op in ops:
            self._apply(bank, model, op, num_atoms=64)
        assert bank.touched_atoms() == sorted(model)
        for atom in range(64):
            assert bank.atom_words(atom) == model.get(atom, (0, 0))

    @given(_dict_model_ops())
    @settings(max_examples=40, deadline=None)
    def test_page_crossing_sequences(self, ops):
        """Capacity far above one page: ops rescaled to land near page
        boundaries so stitched reads/writes are exercised."""
        from repro.core.bank import PAGE_ATOMS

        num_atoms = PAGE_ATOMS * 3
        bank = Bank(0, num_atoms * ATOM_BYTES)
        model = {}
        for op in ops:
            # Map the small atom index to a window straddling page 1/2.
            op = (op[0], op[1] + PAGE_ATOMS - 32) + op[2:]
            self._apply(bank, model, op, num_atoms=num_atoms)
        assert bank.touched_atoms() == sorted(model)
        for atom in sorted(model):
            assert bank.atom_words(atom) == model[atom]

    @staticmethod
    def _apply(bank, model, op, num_atoms):
        kind, atom = op[0], op[1]
        if kind == "write":
            n = min(op[2], num_atoms - atom)
            words = (op[3] * 2)[: n * ATOM_WORDS]
            bank.write(atom * ATOM_BYTES, list(words))
            for i in range(n):
                model[atom + i] = (words[2 * i] & _MASK64,
                                   words[2 * i + 1] & _MASK64)
        elif kind == "read":
            n = min(op[2], num_atoms - atom)
            got = bank.read(atom * ATOM_BYTES, n * ATOM_BYTES)
            want = []
            for i in range(n):
                want.extend(model.get(atom + i, (0, 0)))
            assert got == want
        elif kind == "bwr":
            _, _, half, data, mask = op
            bank.masked_write(atom * ATOM_BYTES + 8 * half, data, mask)
            old = list(model.get(atom, (0, 0)))
            word = old[half]
            for b in range(8):
                if mask & (1 << b):
                    shift = 8 * b
                    word = (word & ~(0xFF << shift)) | (data & (0xFF << shift))
            old[half] = word & _MASK64
            model[atom] = tuple(old)
        elif kind == "add16":
            _, _, operands = op
            old = model.get(atom, (0, 0))
            got = bank.atomic_add16(atom * ATOM_BYTES, list(operands))
            assert got == list(old)
            model[atom] = ((old[0] + operands[0]) & _MASK64,
                           (old[1] + operands[1]) & _MASK64)
        elif kind == "set":
            _, _, w0, w1 = op
            bank.set_atom_words(atom, w0, w1)
            model[atom] = (w0 & _MASK64, w1 & _MASK64)
