"""Smoke tests: every example script runs to success at a small scale.

Examples are user-facing documentation; these tests keep them executable
as the library evolves.  Each runs in a subprocess with scaled-down
arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed (rc={proc.returncode}):\n{proc.stdout}\n{proc.stderr}"
    )
    return proc.stdout


def test_examples_directory_contents():
    """Every example is covered by a smoke test below."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {
        "quickstart.py", "random_access_trace.py", "chained_ring.py",
        "gups_bandwidth.py", "pointer_chase_latency.py",
        "error_injection.py", "numa_channels.py", "congestion_heatmap.py",
        "goblin_kernels.py", "reproduce_paper.py",
    }
    assert scripts == covered


def test_quickstart():
    out = run_example("quickstart.py")
    assert "quickstart OK" in out


def test_random_access_trace(tmp_path):
    csv = tmp_path / "fig5.csv"
    out = run_example("random_access_trace.py", "--requests", "512",
                      "--csv", str(csv))
    assert "simulated runtime" in out
    assert csv.exists()
    header = csv.read_text().splitlines()[0]
    assert "bank_conflicts" in header


def test_chained_ring():
    out = run_example("chained_ring.py", "--devices", "4", "--requests", "8")
    assert "ring" in out and "chain" in out


def test_gups_bandwidth():
    out = run_example("gups_bandwidth.py", "--updates", "256")
    assert "ADD16 atomics" in out


def test_pointer_chase_latency():
    out = run_example("pointer_chase_latency.py", "--nodes", "32",
                      "--hops", "32")
    assert "locality" in out


def test_error_injection():
    out = run_example("error_injection.py", "--requests", "256")
    assert "bit-exact" in out
    assert "(must be 0)" in out


def test_numa_channels():
    out = run_example("numa_channels.py", "--requests", "512")
    assert "channel scaling" in out
    assert "asymmetric" in out


def test_congestion_heatmap():
    out = run_example("congestion_heatmap.py", "--requests", "512")
    assert "vault  0 |" in out


def test_goblin_kernels():
    out = run_example("goblin_kernels.py", "--threads", "4")
    assert "fib(20)" in out
    assert "True" in out  # the atomicity check


def test_reproduce_paper(tmp_path):
    report = tmp_path / "report.md"
    out = run_example("reproduce_paper.py", "--requests", "512",
                      "--out", str(report))
    assert "row ordering matches the paper: **True**" in out
    assert report.exists()
