"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explode"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_unknown_command_main_exits_nonzero(self):
        with pytest.raises(SystemExit) as exc:
            main(["explode"])
        assert exc.value.code != 0

    def test_device_args(self):
        args = build_parser().parse_args(
            ["fig5", "--links", "8", "--banks", "16", "--capacity", "8"])
        assert (args.links, args.banks, args.capacity) == (8, 16, 8)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--requests", "256"]) == 0
        out = capsys.readouterr().out
        assert "TABLE I" in out
        assert "bank speedup" in out

    def test_fig5(self, capsys):
        assert main(["fig5", "--requests", "256"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "simulated runtime" in out

    @pytest.mark.parametrize("shape", ["simple", "chain", "ring", "mesh", "torus"])
    def test_topology_shapes(self, shape, capsys):
        assert main(["topology", shape, "--devices", "4"]) == 0
        out = capsys.readouterr().out
        assert shape in out
        assert "cube 0" in out

    def test_topology_reports_warnings_nonzero(self, capsys):
        # A 2-device "mesh" with the host on dev 0 is fine; instead make
        # an unreachable device via a chain of 1 with 3 spare devices.
        rc = main(["topology", "simple", "--devices", "3"])
        out = capsys.readouterr().out
        # simple() attaches every device to the host: always ok.
        assert rc == 0

    def test_bandwidth(self, capsys):
        assert main(["bandwidth", "--requests", "256"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out
        assert "latency" in out

    def test_faults(self, capsys):
        assert main(["faults", "--requests", "128", "--ber", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "transmissions" in out
        assert "abandoned" in out

    def test_ras(self, capsys):
        assert main([
            "ras", "--requests", "256",
            "--fit-rates", "0,2e6", "--scrub-intervals", "0,64",
        ]) == 0
        out = capsys.readouterr().out
        assert "FIT rate" in out
        assert "bw ovh" in out

    def test_ras_rejects_malformed_sweep_lists(self, capsys):
        assert main(["ras", "--fit-rates", "abc"]) == 2
        assert "invalid sweep list" in capsys.readouterr().err

    def test_replay(self, tmp_path, capsys):
        trace = tmp_path / "t.txt"
        trace.write_text("R 0x1000 64\nW 0x2000 64\nR 0x3000 64\n")
        assert main(["replay", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "replayed 3" in out
