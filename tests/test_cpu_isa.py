"""Tests for the miniature ISA and assembler (repro.cpu.isa/assembler)."""

import pytest

from repro.cpu.assembler import AssemblyError, assemble
from repro.cpu.isa import Instruction, Op, alu_eval, signed

M64 = (1 << 64) - 1


class TestAluEval:
    def test_add_wraps(self):
        assert alu_eval(Op.ADD, M64, 1) == 0

    def test_sub_wraps(self):
        assert alu_eval(Op.SUB, 0, 1) == M64

    def test_mul(self):
        assert alu_eval(Op.MUL, 3, 7) == 21

    def test_logical(self):
        assert alu_eval(Op.AND, 0b1100, 0b1010) == 0b1000
        assert alu_eval(Op.OR, 0b1100, 0b1010) == 0b1110
        assert alu_eval(Op.XOR, 0b1100, 0b1010) == 0b0110

    def test_shifts_mask_amount(self):
        assert alu_eval(Op.SHL, 1, 4) == 16
        assert alu_eval(Op.SHR, 16, 4) == 1
        assert alu_eval(Op.SHL, 1, 64) == 1  # amount & 63

    def test_non_alu_raises(self):
        with pytest.raises(ValueError):
            alu_eval(Op.LD, 1, 2)


class TestSigned:
    def test_positive(self):
        assert signed(5) == 5

    def test_negative(self):
        assert signed(M64) == -1
        assert signed(1 << 63) == -(1 << 63)


class TestInstruction:
    def test_register_bounds(self):
        with pytest.raises(ValueError):
            Instruction(Op.ADD, rd=32)

    def test_classification(self):
        assert Instruction(Op.LD).is_memory
        assert not Instruction(Op.ADD).is_memory
        assert Instruction(Op.BNE).is_branch

    def test_str_forms(self):
        assert str(Instruction(Op.LI, rd=1, imm=5)) == "li r1, 5"
        assert str(Instruction(Op.LD, rd=2, ra=3, imm=8)) == "ld r2, 8(r3)"
        assert str(Instruction(Op.HALT)) == "halt"


class TestAssembler:
    def test_basic_program(self):
        prog = assemble("""
            li r1, 10
            addi r1, r1, -1
            halt
        """)
        assert [i.op for i in prog] == [Op.LI, Op.ADDI, Op.HALT]
        assert prog[1].imm == -1

    def test_labels_resolve(self):
        prog = assemble("""
            li r1, 3
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        assert prog[2].op is Op.BNE
        assert prog[2].imm == 1  # index of the addi

    def test_forward_labels(self):
        prog = assemble("""
            jmp end
            nop
        end:
            halt
        """)
        assert prog[0].imm == 2

    def test_memory_operands(self):
        prog = assemble("ld r2, 16(r3)\nst r4, -8(r5)\namoadd r6, 0x10(r7), r8\n")
        ld, st, amo = prog
        assert (ld.rd, ld.ra, ld.imm) == (2, 3, 16)
        assert (st.rb, st.ra, st.imm) == (4, 5, -8)
        assert (amo.rd, amo.ra, amo.imm, amo.rb) == (6, 7, 16, 8)

    def test_hex_and_comments(self):
        prog = assemble("li r1, 0xFF  ; hex\n# whole-line comment\nhalt\n")
        assert prog[0].imm == 255
        assert len(prog) == 2

    def test_numeric_branch_target(self):
        prog = assemble("jmp 0\n")
        assert prog[0].imm == 0

    @pytest.mark.parametrize("bad", [
        "frobnicate r1",
        "li r1",
        "li r99, 5",
        "ld r1, r2",
        "bne r1, r2, nowhere",
        "li r1, squid",
    ])
    def test_errors_carry_line_info(self, bad):
        with pytest.raises(AssemblyError):
            assemble(bad)

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            assemble("x:\nnop\nx:\nhalt\n")
