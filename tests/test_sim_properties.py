"""Property-based end-to-end tests on small simulations (hypothesis)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import (
    CMD,
    READ_CMD_FOR_BYTES,
    WRITE_CMD_FOR_BYTES,
)
from repro.topology.builder import build_simple


def mk_sim():
    return build_simple(
        HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2), host_links=4
    )


request_strategy = st.lists(
    st.tuples(
        st.booleans(),                      # read?
        st.integers(0, (1 << 20) - 1),      # block index within 64 MB
        st.sampled_from([16, 32, 64, 128]),  # size
    ),
    min_size=1,
    max_size=40,
)


@given(reqs=request_strategy)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_request_response_conservation(reqs):
    """For any mixed request batch: every request returns exactly one
    response, no errors, and the simulation fully drains."""
    sim = mk_sim()
    host = Host(sim)
    stream = []
    for is_read, block, size in reqs:
        addr = block * 64
        if is_read:
            stream.append((READ_CMD_FOR_BYTES[size], addr, None))
        else:
            stream.append((WRITE_CMD_FOR_BYTES[size], addr, [block] * (size // 8)))
    result = host.run(stream)
    assert result.requests_sent == len(stream)
    assert result.responses_received == len(stream)
    assert result.errors_received == 0
    assert sim.pending_packets == 0
    assert host.outstanding == 0


@given(
    writes=st.dictionaries(
        keys=st.integers(0, 4095),          # distinct 64-byte blocks
        values=st.integers(0, (1 << 64) - 1),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_memory_consistency_last_write_wins(writes):
    """Write a distinct value to each block, then read everything back:
    the device returns exactly what was written (read-your-writes
    through the full queue/crossbar/vault path)."""
    sim = mk_sim()
    host = Host(sim)
    stream = [
        (CMD.WR64, block * 64, [value & ((1 << 64) - 1)] * 8)
        for block, value in writes.items()
    ]
    host.run(stream)
    # Read back.
    reads = [(CMD.RD64, block * 64, None) for block in writes]
    sim2_latencies = host.run(reads)
    assert sim2_latencies.errors_received == 0
    # Correlate: issue one read at a time for exact pairing.
    for block, value in writes.items():
        tag = None
        while tag is None:
            tag = host.send_request(CMD.RD64, block * 64)
            if tag is None:
                sim.clock()
                host.drain_responses()
        rsp = None
        for _ in range(200):
            sim.clock()
            for r in host.drain_responses():
                if r.tag == tag:
                    rsp = r
            if rsp:
                break
        assert rsp is not None
        assert list(rsp.payload) == [value & ((1 << 64) - 1)] * 8


@given(n=st.integers(1, 60), seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_clock_determinism(n, seed):
    """Two identical simulations fed identical streams produce identical
    cycle counts and statistics — the engine is fully deterministic."""
    from repro.workloads.random_access import (
        RandomAccessConfig,
        random_access_requests,
    )

    def run():
        sim = mk_sim()
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=n, seed=seed or 1)
        res = host.run(random_access_requests(2 << 30, cfg))
        return (res.cycles, res.responses_received, sim.stats())

    assert run() == run()


@given(
    tags=st.lists(st.integers(0, 511), min_size=1, max_size=30, unique=True)
)
@settings(max_examples=25, deadline=None)
def test_out_of_order_tag_correlation(tags):
    """Responses correlate by tag regardless of arrival order."""
    from repro.packets.packet import build_memrequest

    sim = mk_sim()
    for t in tags:
        # Spread across vaults so completion order scrambles.
        sim.send(build_memrequest(0, (t * 977 % 4096) * 64, t, CMD.RD64, link=0))
    sim.clock(200)
    got = {r.tag for r in sim.recv_all()}
    assert got == set(tags)
