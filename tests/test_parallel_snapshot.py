"""Cross-process snapshot round-trips.

Every shard boundary in the parallel subsystem is a pickle boundary:
service epoch blobs are restored by pumps, `ParallelSimRunner` lanes
and chaos-recovery tests move whole simulations between processes, and
the sharded engine itself re-forks from pickled state after a
checkpoint restore.  These tests assert the contract that makes all of
that sound: a ``snapshot_bundle`` blob restored **in a worker process**
yields exactly the state it yields in this process — including the
shard-boundary objects with subtle innards (in-band link retry
pointers and replay caches, host tag pools, register files, bank
storage).

Comparison is *structured state*, not raw blob bytes: re-pickling in
another interpreter may order dict internals differently under a
different ``PYTHONHASHSEED``, but every observable field must match
bit-for-bit.
"""

from __future__ import annotations

import itertools

import repro.packets.packet as packet_mod
from repro.core.checkpoint import restore_bundle, snapshot_bundle
from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.parallel import WorkerPool
from repro.topology.builder import build_chain
from repro.workloads.random_access import (
    RandomAccessConfig,
    random_access_requests,
)

DEVICE = DeviceConfig(num_links=4, num_banks=8, capacity=2)
FAULT_KW = dict(link_ber=3e-4, link_drop_rate=0.002, link_seed=5)


def _slot_fields(obj) -> dict:
    """Every slot/instance attribute of *obj*, for structured compare."""
    names = []
    for klass in type(obj).__mro__:
        names.extend(getattr(klass, "__slots__", ()))
    if not names:
        return dict(vars(obj))
    return {
        n: getattr(obj, n) for n in names
        if n != "__weakref__" and hasattr(obj, n)
    }


def _link_state_fingerprint(sim: HMCSim) -> list:
    """Structured dump of every in-band link state, directions included."""
    out = []
    for st in sim._link_fault_states:
        dirs = {}
        for key in sorted(st._dirs, key=repr):
            d = st._dirs[key]
            dirs[repr(key)] = {
                "busy_until": d.busy_until,
                "failures": d.failures,
                "pending_serial": d.pending_serial,
                "pending_frp": d.pending_frp,
                "pending_attempts": d.pending_attempts,
                "pending_words": (
                    tuple(d.pending_words)
                    if d.pending_words is not None else None
                ),
                "pointers": _slot_fields(d.pointers),
            }
        out.append({
            "endpoints": st.endpoints,
            "health": st.health.name,
            "degradations": st.degradations,
            "stats": st.stats_dict(),
            "dirs": dirs,
        })
    return out


def _structured_state(sim: HMCSim, host: Host) -> dict:
    return {
        "cycles": sim.clock_value,
        "stats": sim.stats(),
        "registers": [d.regs.snapshot() for d in sim.devices],
        "links": _link_state_fingerprint(sim),
        "outstanding": host.outstanding,
        "storage": [d.peek(0x0) + d.peek(0x400) for d in sim.devices],
    }


def _continue_and_fingerprint(sim: HMCSim, host: Host) -> dict:
    """Deterministic continuation: more traffic, full drain, fingerprint.

    The global packet serial counter is process state, not snapshot
    state; pin it so the parent and the worker stamp identical serials
    on post-restore packets (they feed the link retry caches).
    """
    packet_mod._packet_serial = itertools.count(1 << 20)
    cfg = RandomAccessConfig(num_requests=80, seed=13)
    host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=0)
    sim.run(50)
    fp = _structured_state(sim, host)
    sim.engine.shutdown()
    return fp


# -- module-level pool tasks (must pickle) ---------------------------------


def _worker_fingerprint(blob: bytes) -> dict:
    sim, (host,) = restore_bundle(blob)
    return _structured_state(sim, host)


def _worker_continue(blob: bytes) -> dict:
    sim, (host,) = restore_bundle(blob)
    return _continue_and_fingerprint(sim, host)


def _midflight_bundle(workers: int = 1) -> bytes:
    """A faulty 2-cube chain snapshotted with requests still in flight."""
    packet_mod._packet_serial = itertools.count()
    scfg = SimConfig(
        device=DEVICE, num_devs=2, workers=workers, **FAULT_KW
    )
    sim = build_chain(HMCSim(scfg), host_links=2)
    host = Host(sim)
    cfg = RandomAccessConfig(num_requests=120, seed=3)
    # Target the far cube so every packet crosses the noisy chain link,
    # loading the retry pointers/replay caches that must round-trip.
    host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=1)
    # Leave fresh requests undrained: the snapshot must capture queues,
    # tag pools and pending link replays mid-flight.
    for i in range(8):
        host.send_request(CMD.RD64, 0x1000 + 64 * i, cub=1)
    sim.run(3)
    return snapshot_bundle(sim, host)


class TestCrossProcessRoundTrip:
    def test_worker_restore_matches_parent_restore(self):
        blob = _midflight_bundle()
        sim, (host,) = restore_bundle(blob)
        local = _structured_state(sim, host)
        with WorkerPool(processes=1) as pool:
            remote = pool.map(_worker_fingerprint, [blob])[0]
        assert remote == local
        # The scenario actually loaded the boundary objects.
        assert local["outstanding"] > 0
        assert any(
            d["pending_serial"] != -1 or st["stats"]["irtry_events"] > 0
            for st in local["links"] for d in st["dirs"].values()
        )

    def test_worker_continuation_matches_parent_continuation(self):
        """Restore + drive to quiescence in a worker process: every
        counter, register, retry pointer and storage word must land
        where the in-process continuation lands them."""
        blob = _midflight_bundle()
        sim, (host,) = restore_bundle(blob)
        local = _continue_and_fingerprint(sim, host)
        with WorkerPool(processes=1) as pool:
            remote = pool.map(_worker_continue, [blob])[0]
        assert remote == local
        assert local["outstanding"] == 0  # drained on both sides

    def test_continuation_matches_never_pickled_original(self):
        """The pickled path is not just self-consistent — it matches
        the simulation that never crossed a process boundary."""
        packet_mod._packet_serial = itertools.count()
        scfg = SimConfig(device=DEVICE, num_devs=2, **FAULT_KW)
        sim = build_chain(HMCSim(scfg), host_links=2)
        host = Host(sim)
        cfg = RandomAccessConfig(num_requests=120, seed=3)
        host.run(random_access_requests(DEVICE.capacity_bytes, cfg), cub=1)
        for i in range(8):
            host.send_request(CMD.RD64, 0x1000 + 64 * i, cub=1)
        sim.run(3)
        blob = snapshot_bundle(sim, host)
        original = _continue_and_fingerprint(sim, host)
        with WorkerPool(processes=1) as pool:
            remote = pool.map(_worker_continue, [blob])[0]
        assert remote == original

    def test_sharded_sim_blob_round_trips_through_worker(self):
        """A blob from a workers=2 sim restores in a daemonic worker
        (where it must fall back to the serial engine) and continues to
        the same state the parent's re-forked parallel engine reaches."""
        blob = _midflight_bundle(workers=2)
        sim, (host,) = restore_bundle(blob)
        from repro.parallel.engine import ParallelClockEngine

        assert type(sim.engine) is ParallelClockEngine
        local = _continue_and_fingerprint(sim, host)
        with WorkerPool(processes=1) as pool:
            remote = pool.map(_worker_continue, [blob])[0]
        assert remote == local

    def test_service_warm_template_round_trips(self):
        """The session pool's provisioned-template blob — the object
        service recovery ships around — restores identically across
        the process boundary."""
        from repro.core.checkpoint import restore
        from repro.service import ServiceConfig, SessionPool

        cfg = ServiceConfig(
            device=DEVICE, devs_per_shard=2, slots_per_shard=2,
            provision_requests=32, **FAULT_KW
        )
        blob = SessionPool(cfg).template_blob()
        sim = restore(blob)
        local = {
            "cycles": sim.clock_value,
            "stats": sim.stats(),
            "registers": [d.regs.snapshot() for d in sim.devices],
            "links": _link_state_fingerprint(sim),
        }
        with WorkerPool(processes=1) as pool:
            remote = pool.map(_worker_template_fingerprint, [blob])[0]
        assert remote == local


def _worker_template_fingerprint(blob: bytes) -> dict:
    from repro.core.checkpoint import restore

    sim = restore(blob)
    return {
        "cycles": sim.clock_value,
        "stats": sim.stats(),
        "registers": [d.regs.snapshot() for d in sim.devices],
        "links": _link_state_fingerprint(sim),
    }
