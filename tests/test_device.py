"""Unit tests for the device object (repro.core.device)."""

import pytest

from repro.core.config import DeviceConfig
from repro.core.device import HMCDevice
from repro.core.link import EndpointType


@pytest.fixture
def dev():
    return HMCDevice(0, DeviceConfig(num_links=4, num_banks=8, capacity=2))


class TestStructureHierarchy:
    def test_child_structure_counts(self, dev):
        """Paper IV.A: links, crossbars, quads, vaults, banks, drams."""
        assert len(dev.links) == 4
        assert len(dev.xbars) == 4
        assert len(dev.quads) == 4
        assert len(dev.vaults) == 16
        assert all(len(v.banks) == 8 for v in dev.vaults)
        assert all(len(b.drams) == 8 for v in dev.vaults for b in v.banks)

    def test_8link_structure(self):
        d = HMCDevice(1, DeviceConfig(num_links=8, num_banks=16, capacity=8))
        assert len(d.links) == 8
        assert len(d.quads) == 8
        assert len(d.vaults) == 32

    def test_quads_partition_vaults(self, dev):
        seen = []
        for q in dev.quads:
            seen += q.vault_ids()
        assert sorted(seen) == list(range(16))

    def test_vaults_reference_device(self, dev):
        assert all(v.device is dev for v in dev.vaults)

    def test_bank_capacity(self, dev):
        expected = (2 << 30) // (16 * 8)
        assert dev.vaults[0].banks[0].capacity_bytes == expected

    def test_queue_depths_from_config(self, dev):
        assert dev.vaults[0].rqst.depth == 64
        assert dev.xbars[0].rqst.depth == 128

    def test_address_map_matches_config(self, dev):
        assert dev.amap.num_vaults == 16
        assert dev.amap.capacity_bytes == 2 << 30


class TestTopologyProperties:
    def test_unconfigured_device_is_not_root(self, dev):
        assert not dev.is_root
        assert dev.host_links() == []
        assert dev.configured_links() == []

    def test_root_after_host_attach(self, dev):
        l = dev.links[2]
        l.src_cub, l.src_type = 2, EndpointType.HOST
        l.dst_cub, l.dst_type = 0, EndpointType.DEVICE
        assert dev.is_root
        assert dev.host_links() == [2]

    def test_chain_links(self, dev):
        l = dev.links[1]
        l.src_cub, l.src_type = 0, EndpointType.DEVICE
        l.dst_cub, l.dst_type = 1, EndpointType.DEVICE
        assert dev.chain_links() == [1]
        assert not dev.is_root

    def test_unlink_clears_endpoints(self, dev):
        l = dev.links[0]
        l.src_type = EndpointType.HOST
        l.dst_type = EndpointType.DEVICE
        dev.unlink()
        assert not any(x.configured for x in dev.links)


class TestStorageBackdoor:
    def test_poke_peek_round_trip(self, dev):
        dev.poke(0x4000, [1, 2, 3, 4])
        assert dev.peek(0x4000, nwords=4) == [1, 2, 3, 4]

    def test_poke_decomposes_across_vaults(self, dev):
        """Atoms 64 bytes apart live in different vaults; poke must
        route each to its own bank."""
        dev.poke(0x0, [10, 11])
        dev.poke(0x40, [20, 21])
        v0 = dev.amap.vault_of(0x0)
        v1 = dev.amap.vault_of(0x40)
        assert v0 != v1
        assert dev.peek(0x0) == [10, 11]
        assert dev.peek(0x40) == [20, 21]

    def test_alignment_enforced(self, dev):
        with pytest.raises(ValueError):
            dev.poke(0x8, [1, 2])
        with pytest.raises(ValueError):
            dev.peek(0x0, nwords=1)


class TestAggregates:
    def test_pending_packets_counts_all_queues(self, dev):
        from repro.packets.commands import CMD
        from repro.packets.packet import build_memrequest

        dev.xbars[0].rqst.push(build_memrequest(0, 0, 0, CMD.RD16))
        dev.vaults[3].rqst.push(build_memrequest(0, 0, 1, CMD.RD16))
        assert dev.pending_packets() == 2

    def test_vault_occupancy_snapshot(self, dev):
        from repro.packets.commands import CMD
        from repro.packets.packet import build_memrequest

        dev.vaults[5].rqst.push(build_memrequest(0, 0, 0, CMD.RD16))
        occ = dev.vault_occupancy()
        assert occ[5] == 1
        assert sum(occ) == 1

    def test_reset_preserves_topology(self, dev):
        from repro.packets.commands import CMD
        from repro.packets.packet import build_memrequest

        l = dev.links[0]
        l.src_type = EndpointType.HOST
        l.dst_type = EndpointType.DEVICE
        dev.xbars[0].rqst.push(build_memrequest(0, 0, 0, CMD.RD16))
        dev.regs.write("EDR0", 7)
        dev.reset()
        assert dev.pending_packets() == 0
        assert dev.regs.read("EDR0") == 0
        assert dev.is_root  # link configuration survives reset
