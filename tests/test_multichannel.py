"""Tests for the multi-channel host (repro.host.multichannel)."""

import pytest

from repro.core.errors import InitError
from repro.core.simulator import HMCSim
from repro.host.multichannel import ChannelClock, MultiChannelHost
from repro.packets.commands import CMD
from repro.topology.builder import build_simple


def mk_channels(n=2, links=4):
    return [
        build_simple(HMCSim(num_devs=1, num_links=links, num_banks=8, capacity=2))
        for _ in range(n)
    ]


class TestChannelClock:
    def test_unit_ratio_ticks_every_time(self):
        c = ChannelClock(ratio=1.0)
        assert [c.ticks_due() for _ in range(4)] == [1, 1, 1, 1]

    def test_half_ratio_ticks_every_other(self):
        c = ChannelClock(ratio=0.5)
        assert [c.ticks_due() for _ in range(4)] == [0, 1, 0, 1]

    def test_double_ratio(self):
        c = ChannelClock(ratio=2.0)
        assert [c.ticks_due() for _ in range(3)] == [2, 2, 2]

    def test_fractional_accumulation(self):
        c = ChannelClock(ratio=0.75)
        ticks = [c.ticks_due() for _ in range(8)]
        assert sum(ticks) == 6  # 8 * 0.75


class TestConstruction:
    def test_requires_channels(self):
        with pytest.raises(InitError):
            MultiChannelHost([])

    def test_interleave_power_of_two(self):
        with pytest.raises(InitError):
            MultiChannelHost(mk_channels(), interleave_bytes=3000)

    def test_ratio_arity(self):
        with pytest.raises(InitError):
            MultiChannelHost(mk_channels(2), ratios=[1.0])
        with pytest.raises(InitError):
            MultiChannelHost(mk_channels(2), ratios=[1.0, 0.0])

    def test_total_capacity(self):
        mc = MultiChannelHost(mk_channels(2))
        assert mc.total_capacity_bytes == 2 * (2 << 30)


class TestRouting:
    def test_interleave_alternates_channels(self):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=4096)
        assert mc.route(0)[0] == 0
        assert mc.route(4096)[0] == 1
        assert mc.route(8192)[0] == 0

    def test_local_addresses_dense(self):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=4096)
        # Flat blocks 0,2,4 -> channel 0 local blocks 0,1,2.
        assert mc.route(0)[1] == 0
        assert mc.route(8192)[1] == 4096
        assert mc.route(16384)[1] == 8192

    def test_offset_preserved(self):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=4096)
        chan, local = mc.route(4096 + 123)
        assert chan == 1
        assert local % 4096 == 123

    def test_negative_address_rejected(self):
        mc = MultiChannelHost(mk_channels(2))
        with pytest.raises(ValueError):
            mc.route(-1)

    def test_distinct_flat_addresses_distinct_locations(self):
        mc = MultiChannelHost(mk_channels(4), interleave_bytes=256)
        seen = set()
        for i in range(1024):
            loc = mc.route(i * 64)
            assert loc not in seen
            seen.add(loc)


class TestTraffic:
    def test_run_spreads_and_completes(self):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=256)
        reqs = [(CMD.RD64, i * 64, None) for i in range(256)]
        res = mc.run(reqs)
        assert res.responses_received == 256
        assert res.errors_received == 0
        assert mc.traffic_balance() > 0.8
        assert mc.outstanding == 0

    def test_write_read_across_channels(self):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=64)
        writes = [(CMD.WR64, i * 64, [i] * 8) for i in range(32)]
        mc.run(writes)
        # Verify the data landed in the right channel's storage.
        for i in range(32):
            chan, local = mc.route(i * 64)
            dev = mc.channels[chan].devices[0]
            d = dev.amap.decode(local)
            rel = d.dram * dev.amap.block_size + d.offset
            assert dev.vaults[d.vault].banks[d.bank].read(rel, 64) == [i] * 8

    def test_channels_clock_independently(self):
        mc = MultiChannelHost(mk_channels(2), ratios=[1.0, 0.5])
        mc.clock(10)
        assert mc.channels[0].clock_value == 10
        assert mc.channels[1].clock_value == 5

    def test_slow_channel_still_completes(self):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=256,
                              ratios=[1.0, 0.25])
        reqs = [(CMD.RD64, i * 64, None) for i in range(64)]
        res = mc.run(reqs)
        assert res.responses_received == 64

    def test_heterogeneous_channels(self):
        """Channels may differ in configuration — separate objects."""
        chans = [
            build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)),
            build_simple(HMCSim(num_devs=1, num_links=8, num_banks=16, capacity=8)),
        ]
        mc = MultiChannelHost(chans, interleave_bytes=1024)
        res = mc.run([(CMD.RD64, i * 64, None) for i in range(128)])
        assert res.responses_received == 128

    def test_slow_channel_raises_reference_latency(self):
        """Latencies are reported in host reference ticks, so requests
        served by a half-rate channel show the NUMA penalty."""
        fast = MultiChannelHost(mk_channels(2), interleave_bytes=256,
                                ratios=[1.0, 1.0])
        slow = MultiChannelHost(mk_channels(2), interleave_bytes=256,
                                ratios=[1.0, 0.5])
        reqs = [(CMD.RD64, i * 64, None) for i in range(256)]
        r_fast = fast.run(list(reqs))
        r_slow = slow.run(list(reqs))
        assert r_slow.mean_latency > r_fast.mean_latency * 1.2

    def test_single_channel_degenerates_to_host(self):
        mc = MultiChannelHost(mk_channels(1))
        res = mc.run([(CMD.RD64, i * 64, None) for i in range(16)])
        assert res.responses_received == 16
        assert mc.route(12345)[0] == 0
