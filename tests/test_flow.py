"""Unit + property tests for flow control (repro.packets.flow)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.packets.commands import CMD
from repro.packets.flow import (
    FlowControlError,
    FlowController,
    LinkTokens,
    RetryPointerState,
    make_null,
    make_pret,
    make_tret,
)
from repro.packets.packet import Packet


class TestLinkTokens:
    def test_starts_full(self):
        t = LinkTokens(capacity=32)
        assert t.available == 32
        assert t.in_flight == 0

    def test_consume_restore(self):
        t = LinkTokens(capacity=10)
        t.consume(4)
        assert t.available == 6
        assert t.in_flight == 4
        t.restore(4)
        assert t.available == 10

    def test_can_send(self):
        t = LinkTokens(capacity=3)
        assert t.can_send(3)
        assert not t.can_send(4)

    def test_overdraw_raises(self):
        t = LinkTokens(capacity=2)
        with pytest.raises(FlowControlError):
            t.consume(3)

    def test_over_return_raises(self):
        t = LinkTokens(capacity=2)
        with pytest.raises(FlowControlError):
            t.restore(1)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LinkTokens(capacity=0)

    def test_explicit_available_validated(self):
        with pytest.raises(ValueError):
            LinkTokens(capacity=2, available=3)

    @given(ops=st.lists(st.integers(1, 9), max_size=50))
    @settings(max_examples=50)
    def test_token_conservation_invariant(self, ops):
        """available + in_flight == capacity under any legal sequence."""
        t = LinkTokens(capacity=64)
        borrowed = []
        for n in ops:
            if t.can_send(n):
                t.consume(n)
                borrowed.append(n)
            elif borrowed:
                t.restore(borrowed.pop())
            assert t.available + t.in_flight == 64
            assert 0 <= t.available <= 64


class TestRetryPointers:
    def test_stamp_assigns_sequential_frp(self):
        r = RetryPointerState(buffer_slots=8)
        pkts = [Packet(cmd=CMD.RD16) for _ in range(3)]
        frps = [r.stamp(p) for p in pkts]
        assert frps == [0, 1, 2]
        assert [p.frp for p in pkts] == [0, 1, 2]
        assert r.outstanding == 3

    def test_frp_wraps_at_buffer_size(self):
        r = RetryPointerState(buffer_slots=4)
        for i in range(4):
            frp = r.stamp(Packet(cmd=CMD.RD16))
            assert frp == i
        r.acknowledge(3)  # free all
        assert r.stamp(Packet(cmd=CMD.RD16)) == 0

    def test_buffer_full_raises(self):
        r = RetryPointerState(buffer_slots=2)
        r.stamp(Packet(cmd=CMD.RD16))
        r.stamp(Packet(cmd=CMD.RD16))
        with pytest.raises(FlowControlError):
            r.stamp(Packet(cmd=CMD.RD16))

    def test_cumulative_ack(self):
        r = RetryPointerState(buffer_slots=16)
        for _ in range(5):
            r.stamp(Packet(cmd=CMD.RD16))
        freed = r.acknowledge(2)  # acks 0,1,2
        assert freed == 3
        assert r.outstanding == 2

    def test_unknown_rrp_flushes_nothing_outstanding(self):
        r = RetryPointerState(buffer_slots=4)
        assert r.acknowledge(3) == 0


class TestFlowPacketBuilders:
    def test_tret_carries_tokens(self):
        pkt = make_tret(cub=1, rtc=12, link=2)
        assert pkt.cmd is CMD.TRET
        assert pkt.rtc == 12
        assert pkt.slid == 2
        assert pkt.num_flits == 1

    def test_tret_clamps_to_field_width(self):
        assert make_tret(0, rtc=1000).rtc == 31

    def test_pret_echoes_rrp(self):
        pkt = make_pret(cub=0, rrp=0x1FF)
        assert pkt.cmd is CMD.PRET
        assert pkt.rrp == 0xFF

    def test_null(self):
        pkt = make_null()
        assert pkt.cmd is CMD.NULL
        assert not pkt.expects_response


class TestFlowController:
    def test_try_send_consumes_and_stamps(self):
        fc = FlowController(token_capacity=8)
        pkt = Packet(cmd=CMD.WR16, payload=(1, 2))  # 2 FLITs
        assert fc.try_send(pkt)
        assert fc.tokens.available == 6
        assert fc.retry.outstanding == 1

    def test_try_send_stalls_without_tokens(self):
        fc = FlowController(token_capacity=1)
        pkt = Packet(cmd=CMD.WR16, payload=(1, 2))
        assert not fc.try_send(pkt)
        assert fc.tokens.available == 1  # untouched

    def test_on_receive_returns_tokens_and_acks(self):
        fc = FlowController(token_capacity=8)
        out = Packet(cmd=CMD.RD16)
        fc.try_send(out)
        rsp = Packet(cmd=CMD.WR_RS, rrp=out.frp)
        rsp.rtc = 1
        fc.on_receive(rsp)
        assert fc.tokens.available == 8
        assert fc.retry.outstanding == 0
