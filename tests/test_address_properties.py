"""Property-based tests for address mapping bijectivity (hypothesis)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.addressing.address_map import AddressMap, AddressMapMode

GB = 1 << 30

configs = st.builds(
    dict,
    num_vaults=st.sampled_from([16, 32]),
    num_banks=st.sampled_from([8, 16]),
    block_size=st.sampled_from([32, 64, 128]),
    capacity_bytes=st.sampled_from([1 * GB, 2 * GB, 4 * GB]),
    mode=st.sampled_from(list(AddressMapMode)),
)


@given(cfg=configs, data=st.data())
@settings(max_examples=200)
def test_decode_encode_is_identity(cfg, data):
    m = AddressMap(**cfg)
    addr = data.draw(st.integers(0, m.capacity_bytes - 1))
    d = m.decode(addr)
    assert m.encode(d.vault, d.bank, d.dram, d.offset) == addr


@given(cfg=configs, data=st.data())
@settings(max_examples=200)
def test_encode_decode_is_identity(cfg, data):
    m = AddressMap(**cfg)
    vault = data.draw(st.integers(0, m.num_vaults - 1))
    bank = data.draw(st.integers(0, m.num_banks - 1))
    dram = data.draw(st.integers(0, max(0, (1 << m.dram_bits) - 1)))
    offset = data.draw(st.integers(0, m.block_size - 1))
    addr = m.encode(vault, bank, dram, offset)
    d = m.decode(addr)
    assert (d.vault, d.bank, d.dram, d.offset) == (vault, bank, dram, offset)


@given(cfg=configs, data=st.data())
@settings(max_examples=100)
def test_fields_stay_in_range(cfg, data):
    m = AddressMap(**cfg)
    addr = data.draw(st.integers(0, m.capacity_bytes - 1))
    d = m.decode(addr)
    assert 0 <= d.vault < m.num_vaults
    assert 0 <= d.bank < m.num_banks
    assert 0 <= d.offset < m.block_size
    assert 0 <= d.dram < max(1, 1 << m.dram_bits)


@given(
    order=st.permutations(["vault", "bank", "dram"]),
    data=st.data(),
)
@settings(max_examples=60)
def test_custom_orders_are_bijective(order, data):
    m = AddressMap(
        num_vaults=16, num_banks=8, block_size=64,
        capacity_bytes=2 * GB, field_order=order,
    )
    addr = data.draw(st.integers(0, m.capacity_bytes - 1))
    d = m.decode(addr)
    assert m.encode(*d.as_tuple()) == addr


def test_all_modes_partition_address_space_distinctly():
    """Different map modes place at least some addresses differently —
    they are genuinely different layouts, not aliases."""
    maps = {
        mode: AddressMap(16, 8, 64, 2 * GB, mode=mode) for mode in AddressMapMode
    }
    probe = [i * 64 for i in range(1, 64)]
    decodes = {
        mode: tuple(m.decode(a).as_tuple() for a in probe) for mode, m in maps.items()
    }
    for a, b in itertools.combinations(decodes.values(), 2):
        assert a != b
