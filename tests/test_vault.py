"""Unit tests for vault logic (repro.core.vault): conflict recognition
(stage 3) and request processing (stage 4)."""

from types import SimpleNamespace

import pytest

from repro.addressing.address_map import AddressMap
from repro.core.vault import Vault
from repro.packets.commands import CMD
from repro.packets.packet import ErrStat, build_memrequest
from repro.registers.regdefs import physical_index, index_by_name
from repro.registers.regfile import RegisterFile
from repro.trace.events import EventType
from repro.trace.tracer import MemorySink, Tracer

GB = 1 << 30


@pytest.fixture
def amap():
    return AddressMap(num_vaults=16, num_banks=8, block_size=64, capacity_bytes=2 * GB)


@pytest.fixture
def tracer():
    t = Tracer(mask=EventType.ALL)
    t.add_sink(MemorySink())
    return t


def mk_vault(queue_depth=8, banks=8, device=None):
    return Vault(
        vault_id=0, quad_id=0, num_banks=banks, bank_bytes=16 << 20,
        num_drams=8, queue_depth=queue_depth, device=device,
    )


def addr_for_bank(amap, bank, dram=0):
    return amap.encode(0, bank, dram, 0)


def rd(amap, bank, tag=0, dram=0):
    return build_memrequest(0, addr_for_bank(amap, bank, dram), tag, CMD.RD64)


def wr(amap, bank, tag=0, data=None, dram=0):
    return build_memrequest(
        0, addr_for_bank(amap, bank, dram), tag, CMD.WR64, payload=data or [1] * 8
    )


class TestConflictRecognition:
    def test_no_conflicts_across_distinct_banks(self, amap, tracer):
        v = mk_vault()
        for b in range(4):
            v.rqst.push(rd(amap, b))
        assert v.recognize_conflicts(0, amap, window=8, tracer=tracer, dev_id=0) == 0

    def test_same_bank_in_window_conflicts(self, amap, tracer):
        v = mk_vault()
        v.rqst.push(rd(amap, 3))
        v.rqst.push(rd(amap, 3, dram=1))
        n = v.recognize_conflicts(0, amap, window=8, tracer=tracer, dev_id=0)
        assert n == 1
        sink = tracer.sinks[0]
        events = [e for e in sink.events if e.type is EventType.BANK_CONFLICT]
        assert len(events) == 1
        assert events[0].bank == 3
        assert events[0].vault == 0

    def test_busy_bank_conflicts(self, amap, tracer):
        v = mk_vault()
        v.banks[2].occupy(cycle=0, busy_cycles=5)
        v.rqst.push(rd(amap, 2))
        assert v.recognize_conflicts(3, amap, 8, tracer, 0) == 1

    def test_window_limits_scan(self, amap, tracer):
        v = mk_vault()
        v.rqst.push(rd(amap, 0))
        v.rqst.push(rd(amap, 1))
        v.rqst.push(rd(amap, 0, dram=1))  # conflicts with head, outside window 2
        assert v.recognize_conflicts(0, amap, window=2, tracer=tracer, dev_id=0) == 0
        assert v.recognize_conflicts(0, amap, window=3, tracer=tracer, dev_id=0) == 1

    def test_read_only_pass(self, amap, tracer):
        """Paper IV.C.3: stage 3 does not modify internal data."""
        v = mk_vault()
        v.rqst.push(rd(amap, 0))
        v.rqst.push(rd(amap, 0, dram=1))
        before = list(v.rqst)
        v.recognize_conflicts(0, amap, 8, tracer, 0)
        assert list(v.rqst) == before
        assert len(v.rsp) == 0

    def test_empty_queue(self, amap, tracer):
        v = mk_vault()
        assert v.recognize_conflicts(0, amap, 8, tracer, 0) == 0


class TestRequestProcessing:
    def test_read_generates_response(self, amap, tracer):
        v = mk_vault()
        v.rqst.push(rd(amap, 1, tag=42))
        n = v.process_requests(0, amap, issue_width=4, bank_busy_cycles=2,
                               tracer=tracer, dev_id=0)
        assert n == 1
        assert v.rd_count == 1
        rsp = v.rsp.pop()
        assert rsp.cmd is CMD.RD_RS
        assert rsp.tag == 42

    def test_write_then_read_data(self, amap, tracer):
        v = mk_vault()
        data = list(range(8))
        v.rqst.push(wr(amap, 1, tag=1, data=data))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        v.rqst.push(rd(amap, 1, tag=2))
        v.process_requests(1, amap, 4, 0, tracer, 0)
        v.rsp.pop()  # write response
        rsp = v.rsp.pop()
        assert list(rsp.payload) == data

    def test_issue_width_caps_per_cycle(self, amap, tracer):
        v = mk_vault()
        for b in range(6):
            v.rqst.push(rd(amap, b))
        assert v.process_requests(0, amap, issue_width=2, bank_busy_cycles=0,
                                  tracer=tracer, dev_id=0) == 2
        assert len(v.rqst) == 4

    def test_busy_bank_blocks_issue(self, amap, tracer):
        v = mk_vault()
        v.banks[0].occupy(0, busy_cycles=4)
        v.rqst.push(rd(amap, 0))
        assert v.process_requests(0, amap, 4, 4, tracer, 0) == 0
        assert v.issue_stall_cycles == 1
        # After the busy window the packet issues.
        assert v.process_requests(4, amap, 4, 4, tracer, 0) == 1

    def test_same_bank_packets_never_reorder(self, amap, tracer):
        """Spec: reorder points must preserve the stream order from a
        link to a specific bank."""
        v = mk_vault()
        v.rqst.push(wr(amap, 0, tag=1, data=[111] * 8))
        v.rqst.push(wr(amap, 0, tag=2, data=[222] * 8))
        v.rqst.push(rd(amap, 0, tag=3))
        # With busy banks, at most one same-bank packet per cycle, in order.
        cycle = 0
        tags = []
        while len(tags) < 3 and cycle < 50:
            v.process_requests(cycle, amap, 4, 2, tracer, 0)
            while not v.rsp.is_empty:
                tags.append(v.rsp.pop().tag)
            cycle += 1
        assert tags == [1, 2, 3]

    def test_different_banks_issue_in_parallel(self, amap, tracer):
        v = mk_vault()
        for b in range(4):
            v.rqst.push(rd(amap, b))
        assert v.process_requests(0, amap, 4, 8, tracer, 0) == 4

    def test_blocked_head_does_not_block_other_banks(self, amap, tracer):
        v = mk_vault()
        v.banks[0].occupy(0, busy_cycles=10)
        v.rqst.push(rd(amap, 0, tag=1))
        v.rqst.push(rd(amap, 1, tag=2))
        assert v.process_requests(0, amap, 4, 10, tracer, 0) == 1
        assert v.rsp.pop().tag == 2

    def test_full_response_queue_stalls_issue(self, amap, tracer):
        v = mk_vault(queue_depth=2)
        v.rqst.push(rd(amap, 0, tag=1))
        v.rqst.push(rd(amap, 1, tag=2))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        assert v.rsp.is_full  # both responses registered
        v.rqst.push(rd(amap, 2, tag=3))
        v.process_requests(1, amap, 4, 0, tracer, 0)
        assert len(v.rqst) == 1  # stuck behind the full response queue
        assert v.rsp_stall_count == 1
        v.rsp.pop()
        v.process_requests(2, amap, 4, 0, tracer, 0)
        assert len(v.rqst) == 0

    def test_posted_write_yields_no_response(self, amap, tracer):
        v = mk_vault()
        pkt = build_memrequest(0, addr_for_bank(amap, 0), 0, CMD.P_WR64,
                               payload=[9] * 8)
        v.rqst.push(pkt)
        v.process_requests(0, amap, 4, 0, tracer, 0)
        assert v.wr_count == 1
        assert v.rsp.is_empty

    def test_atomic_returns_old_value(self, amap, tracer):
        v = mk_vault()
        v.rqst.push(wr(amap, 0, tag=1, data=[5, 6] + [0] * 6))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        v.rsp.pop()
        atomic = build_memrequest(0, addr_for_bank(amap, 0), 2, CMD.ADD16,
                                  payload=[10, 10])
        v.rqst.push(atomic)
        v.process_requests(1, amap, 4, 0, tracer, 0)
        rsp = v.rsp.pop()
        assert rsp.cmd is CMD.RD_RS
        assert list(rsp.payload) == [5, 6]
        assert v.atomic_count == 1

    def test_flow_packets_consumed_silently(self, amap, tracer):
        from repro.packets.flow import make_null
        v = mk_vault()
        v.rqst.push(make_null())
        v.rqst.push(rd(amap, 0, tag=1))
        assert v.process_requests(0, amap, 4, 0, tracer, 0) == 1
        assert v.rqst.is_empty

    def test_out_of_bank_range_yields_error_response(self, amap, tracer):
        # A 64-byte read whose bank-relative range exceeds bank capacity.
        v = mk_vault()
        v.banks[0].capacity_bytes = 32  # shrink to force the error
        v.rqst.push(rd(amap, 0, tag=7))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        rsp = v.rsp.pop()
        assert rsp.cmd is CMD.ERROR
        assert rsp.errstat is ErrStat.INVALID_ADDRESS
        assert rsp.dinv == 1


class TestModeAccess:
    def test_mode_write_then_read(self, amap, tracer):
        dev = SimpleNamespace(regs=RegisterFile())
        v = mk_vault(device=dev)
        reg = physical_index(index_by_name("EDR0"))
        v.rqst.push(build_memrequest(0, reg, 1, CMD.MD_WR, payload=[0xBEEF, 0]))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        assert v.rsp.pop().cmd is CMD.MD_WR_RS
        v.rqst.push(build_memrequest(0, reg, 2, CMD.MD_RD))
        v.process_requests(1, amap, 4, 0, tracer, 0)
        rsp = v.rsp.pop()
        assert rsp.cmd is CMD.MD_RD_RS
        assert rsp.payload[0] == 0xBEEF
        assert v.mode_count == 2

    def test_mode_access_unknown_register_errors(self, amap, tracer):
        dev = SimpleNamespace(regs=RegisterFile())
        v = mk_vault(device=dev)
        v.rqst.push(build_memrequest(0, 0x123, 1, CMD.MD_RD))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        rsp = v.rsp.pop()
        assert rsp.cmd is CMD.ERROR
        assert rsp.errstat is ErrStat.INVALID_ADDRESS

    def test_mode_write_to_readonly_errors(self, amap, tracer):
        dev = SimpleNamespace(regs=RegisterFile())
        v = mk_vault(device=dev)
        reg = physical_index(index_by_name("ERR"))
        v.rqst.push(build_memrequest(0, reg, 1, CMD.MD_WR, payload=[1, 0]))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        assert v.rsp.pop().cmd is CMD.ERROR

    def test_mode_without_device_errors(self, amap, tracer):
        v = mk_vault(device=None)
        v.rqst.push(build_memrequest(0, 0x2B0000, 1, CMD.MD_RD))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        rsp = v.rsp.pop()
        assert rsp.errstat is ErrStat.DEVICE_CRITICAL


class TestLifecycle:
    def test_reset(self, amap, tracer):
        v = mk_vault()
        v.rqst.push(rd(amap, 0))
        v.process_requests(0, amap, 4, 2, tracer, 0)
        v.reset()
        assert v.rqst.is_empty and v.rsp.is_empty
        assert v.rd_count == 0
        assert v.total_requests == 0
        assert not v.banks[0].is_busy(0)

    def test_total_requests(self, amap, tracer):
        v = mk_vault()
        v.rqst.push(rd(amap, 0))
        v.rqst.push(wr(amap, 1))
        v.process_requests(0, amap, 4, 0, tracer, 0)
        assert v.total_requests == 2
