"""Unit tests for crossbar routing (repro.core.crossbar)."""

import pytest

from repro.core.simulator import HMCSim
from repro.packets.commands import CMD
from repro.packets.packet import ErrStat, build_memrequest
from repro.trace.events import EventType
from repro.trace.tracer import MemorySink


@pytest.fixture
def sim():
    s = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)
    s.attach_host(0, 0)
    return s


@pytest.fixture
def sink(sim):
    return sim.trace_to_memory(EventType.ALL)


def inject(sim, pkt, link=0, cycle=0):
    dev = sim.devices[0]
    pkt.route_stack = [(0, link)]
    dev.xbars[link].rqst.push(pkt, cycle)
    return pkt


def local_addr(sim, vault, bank=0, dram=0):
    return sim.devices[0].amap.encode(vault, bank, dram, 0)


class TestLocalRouting:
    def test_packet_reaches_target_vault(self, sim, sink):
        dev = sim.devices[0]
        pkt = inject(sim, build_memrequest(0, local_addr(sim, 5), 1, CMD.RD64))
        # Vault 5 is non-local to link 0: one base transit cycle plus
        # the configured routed-latency penalty.
        wait = 1 + sim.config.nonlocal_penalty_cycles
        moved = dev.xbars[0].route_requests(dev, sim, cycle=wait, moves=4,
                                            tracer=sim.tracer)
        assert moved == 1
        assert dev.vaults[5].rqst.peek() is pkt
        assert dev.xbars[0].routed_local == 1

    def test_nonlocal_penalty_delays_transit(self, sim, sink):
        dev = sim.devices[0]
        inject(sim, build_memrequest(0, local_addr(sim, 5), 1, CMD.RD64))
        # age 1 is enough for local traffic but not for cross-quad.
        assert dev.xbars[0].route_requests(dev, sim, 1, 4, sim.tracer) == 0
        assert dev.xbars[0].route_requests(dev, sim, 2, 4, sim.tracer) == 1

    def test_local_quad_no_latency_penalty(self, sim, sink):
        dev = sim.devices[0]
        # Link 0's closest quad is 0 (vaults 0..3).
        inject(sim, build_memrequest(0, local_addr(sim, 2), 1, CMD.RD64))
        dev.xbars[0].route_requests(dev, sim, 1, 4, sim.tracer)
        assert dev.xbars[0].latency_events == 0

    def test_nonlocal_quad_raises_latency_penalty(self, sim, sink):
        """Paper IV.C.2: higher latencies detected when the ingress link
        is not co-located with the destination vault's quad."""
        dev = sim.devices[0]
        inject(sim, build_memrequest(0, local_addr(sim, 9), 1, CMD.RD64))
        wait = 1 + sim.config.nonlocal_penalty_cycles
        dev.xbars[0].route_requests(dev, sim, wait, 4, sim.tracer)
        assert dev.xbars[0].latency_events == 1
        events = [e for e in sink.events if e.type is EventType.LATENCY_PENALTY]
        assert len(events) == 1
        assert events[0].vault == 9
        assert events[0].link == 0

    def test_full_vault_queue_stalls(self, sim, sink):
        dev = sim.devices[0]
        vault = dev.vaults[1]
        filler = build_memrequest(0, local_addr(sim, 1), 0, CMD.RD16)
        while not vault.rqst.is_full:
            vault.rqst.push(build_memrequest(0, local_addr(sim, 1), 0, CMD.RD16))
        inject(sim, build_memrequest(0, local_addr(sim, 1), 1, CMD.RD64))
        moved = dev.xbars[0].route_requests(dev, sim, 1, 4, sim.tracer)
        assert moved == 0
        assert dev.xbars[0].stall_events == 1
        assert any(e.type is EventType.XBAR_RQST_STALL for e in sink.events)

    def test_moves_cap(self, sim, sink):
        dev = sim.devices[0]
        for i in range(5):
            inject(sim, build_memrequest(0, local_addr(sim, i % 4), i, CMD.RD16))
        moved = dev.xbars[0].route_requests(dev, sim, 1, moves=2, tracer=sim.tracer)
        assert moved == 2
        assert len(dev.xbars[0].rqst) == 3

    def test_hop_limit_defers_same_cycle_arrivals(self, sim, sink):
        dev = sim.devices[0]
        inject(sim, build_memrequest(0, local_addr(sim, 0), 1, CMD.RD64), cycle=5)
        assert dev.xbars[0].route_requests(dev, sim, 5, 4, sim.tracer) == 0
        assert dev.xbars[0].route_requests(dev, sim, 6, 4, sim.tracer) == 1

    def test_fifo_order_for_local_traffic(self, sim, sink):
        dev = sim.devices[0]
        a = inject(sim, build_memrequest(0, local_addr(sim, 0), 1, CMD.RD16))
        b = inject(sim, build_memrequest(0, local_addr(sim, 0, bank=1), 2, CMD.RD16))
        dev.xbars[0].route_requests(dev, sim, 1, 4, sim.tracer)
        assert dev.vaults[0].rqst.pop() is a
        assert dev.vaults[0].rqst.pop() is b


class TestRemoteRouting:
    @pytest.fixture
    def chain(self):
        s = HMCSim(num_devs=2, num_links=4, num_banks=8, capacity=2)
        s.attach_host(0, 0)
        s.connect(0, 1, 1, 0)
        return s

    def test_forward_to_peer(self, chain):
        dev0, dev1 = chain.devices
        pkt = inject(chain, build_memrequest(1, 0x40, 1, CMD.RD64))
        moved = dev0.xbars[0].route_requests(dev0, chain, 1, 4, chain.tracer)
        assert moved == 1
        assert dev0.xbars[0].routed_remote == 1
        # Packet landed in dev1's crossbar at the peer link (link 0).
        assert dev1.xbars[0].rqst.peek() is pkt
        assert pkt.hops == 1
        assert pkt.route_stack == [(0, 0), (1, 0)]

    def test_remote_passes_stalled_local(self, chain):
        """Weak ordering (III.C): packets destined for ancillary devices
        may pass those waiting for local vault access."""
        dev0 = chain.devices[0]
        vault0 = dev0.vaults[0]
        while not vault0.rqst.is_full:
            vault0.rqst.push(build_memrequest(0, 0, 0, CMD.RD16))
        local = inject(chain, build_memrequest(0, local_addr(chain, 0), 1, CMD.RD16))
        remote = inject(chain, build_memrequest(1, 0x40, 2, CMD.RD16))
        moved = dev0.xbars[0].route_requests(dev0, chain, 1, 4, chain.tracer)
        assert moved == 1
        assert chain.devices[1].xbars[0].rqst.peek() is remote
        assert dev0.xbars[0].rqst.peek() is local  # still waiting

    def test_unroutable_cube_gets_error_response(self, chain):
        dev0 = chain.devices[0]
        inject(chain, build_memrequest(5, 0x40, 9, CMD.RD64))
        dev0.xbars[0].route_requests(dev0, chain, 1, 4, chain.tracer)
        assert dev0.xbars[0].misroutes == 1
        rsp = dev0.xbars[0].rsp.pop()
        assert rsp.cmd is CMD.ERROR
        assert rsp.errstat is ErrStat.UNROUTABLE
        assert rsp.tag == 9

    def test_unroutable_posted_is_dropped_silently(self, chain):
        dev0 = chain.devices[0]
        inject(chain, build_memrequest(5, 0x40, 0, CMD.P_WR16, payload=[1, 2]))
        dev0.xbars[0].route_requests(dev0, chain, 1, 4, chain.tracer)
        assert dev0.xbars[0].rsp.is_empty

    def test_full_peer_queue_stalls_forward(self, chain):
        dev0, dev1 = chain.devices
        while not dev1.xbars[0].rqst.is_full:
            dev1.xbars[0].rqst.push(build_memrequest(1, 0, 0, CMD.RD16))
        pkt = inject(chain, build_memrequest(1, 0x40, 1, CMD.RD64))
        moved = dev0.xbars[0].route_requests(dev0, chain, 1, 4, chain.tracer)
        assert moved == 0
        assert dev0.xbars[0].rqst.peek() is pkt
        assert dev0.xbars[0].stall_events == 1


class TestZombieExpiry:
    def test_queue_timeout_expires_packets(self):
        s = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2,
                   queue_timeout=10)
        s.attach_host(0, 0)
        dev = s.devices[0]
        # An unroutable-but-unforwardable packet sits forever: fill the
        # destination vault so it can never move.
        vault = dev.vaults[0]
        while not vault.rqst.is_full:
            vault.rqst.push(build_memrequest(0, 0, 0, CMD.RD16))
        pkt = build_memrequest(0, 0, 7, CMD.RD64)
        pkt.route_stack = [(0, 0)]
        dev.xbars[0].rqst.push(pkt, 0)
        dev.xbars[0].route_requests(dev, s, 100, 4, s.tracer)
        assert dev.xbars[0].expired == 1
        rsp = dev.xbars[0].rsp.pop()
        assert rsp.errstat is ErrStat.QUEUE_TIMEOUT
        assert rsp.tag == 7
