"""Equivalence of the vectorized CRC batch interface with the scalar
table CRC (flat-hot-core satellite: packets/crc.py vectorization)."""

from __future__ import annotations

import random

import numpy as np

from repro.packets.crc import (
    crc32_koopman,
    crc32_koopman_batch,
    crc_words,
    crc_words_batch,
)


class TestBatchEquivalence:
    def test_byte_batch_matches_scalar(self):
        rng = random.Random(0xC0C)
        data = np.array(
            [[rng.randrange(256) for _ in range(24)] for _ in range(64)],
            dtype=np.uint8,
        )
        batch = crc32_koopman_batch(data)
        for row, got in zip(data, batch):
            assert int(got) == crc32_koopman(bytes(row))

    def test_word_batch_matches_scalar(self):
        rng = random.Random(0xBEEF)
        words = np.array(
            [[rng.randrange(1 << 64) for _ in range(10)] for _ in range(128)],
            dtype=np.uint64,
        )
        batch = crc_words_batch(words)
        for row, got in zip(words, batch):
            assert int(got) == crc_words(int(w) for w in row)

    def test_empty_messages(self):
        data = np.zeros((5, 0), dtype=np.uint8)
        assert [int(c) for c in crc32_koopman_batch(data)] == [0] * 5

    def test_single_row(self):
        words = np.array([[1, 2, 3]], dtype=np.uint64)
        assert int(crc_words_batch(words)[0]) == crc_words([1, 2, 3])

    def test_rejects_wrong_rank(self):
        import pytest

        with pytest.raises(ValueError):
            crc32_koopman_batch(np.zeros(8, dtype=np.uint8))
        with pytest.raises(ValueError):
            crc_words_batch(np.zeros((2, 2, 2), dtype=np.uint64))

    def test_packet_encode_crc_round_trip(self):
        """Batch CRC agrees with the CRC embedded by Packet.encode."""
        from repro.packets.commands import CMD
        from repro.packets.packet import CRC_BITS, CRC_SHIFT, build_memrequest

        pkts = [
            build_memrequest(0, 64 * i, i, CMD.WR64, payload=[i] * 8)
            for i in range(16)
        ]
        mats = []
        crcs = []
        for p in pkts:
            words = p.encode()
            mask = ((1 << CRC_BITS) - 1) << CRC_SHIFT
            crcs.append((words[-1] & mask) >> CRC_SHIFT)
            words[-1] &= ~mask & ((1 << 64) - 1)
            mats.append(words)
        batch = crc_words_batch(np.array(mats, dtype=np.uint64))
        assert [int(c) for c in batch] == crcs
