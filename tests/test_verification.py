"""Tests for the shadow-model verification harness (repro.verification)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.simulator import HMCSim
from repro.host.host import Host, LinkPolicy
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.verification.shadow import CheckFailure, CheckingHost, ShadowMemory


def mk_checker(**kw):
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
    return sim, CheckingHost(sim, **kw)


class TestShadowMemory:
    def test_unwritten_reads_zero(self):
        s = ShadowMemory(1 << 20)
        assert s.read(0, 32) == [0, 0, 0, 0]

    def test_write_read(self):
        s = ShadowMemory(1 << 20)
        s.write(0x40, [1, 2, 3, 4])
        assert s.read(0x40, 32) == [1, 2, 3, 4]

    def test_add16(self):
        s = ShadowMemory(1 << 20)
        s.write(0, [10, 20])
        assert s.add16(0, [5, 5]) == [10, 20]
        assert s.read(0, 16) == [15, 25]

    def test_alignment_and_bounds(self):
        s = ShadowMemory(64)
        with pytest.raises(ValueError):
            s.read(8, 16)
        with pytest.raises(ValueError):
            s.read(64, 16)
        with pytest.raises(ValueError):
            ShadowMemory(17)

    def test_masks_to_64_bits(self):
        s = ShadowMemory(1 << 10)
        s.write(0, [1 << 64, 0])
        assert s.read(0, 16) == [0, 0]


class TestCheckingHost:
    def test_clean_write_read_passes(self):
        sim, ch = mk_checker()
        stats = ch.run(
            [(CMD.WR64, i * 64, [i + 1] * 8) for i in range(32)]
            + [(CMD.RD64, i * 64, None) for i in range(32)]
        )
        assert stats.writes_shadowed == 32
        assert stats.reads_checked == 32
        assert stats.mismatches == 0

    def test_unwritten_reads_checked_as_zero(self):
        sim, ch = mk_checker()
        stats = ch.run([(CMD.RD64, i * 4096, None) for i in range(16)])
        assert stats.reads_checked == 16
        assert stats.mismatches == 0

    def test_posted_writes_shadowed(self):
        sim, ch = mk_checker()
        stats = ch.run(
            [(CMD.P_WR64, 0x100, [7] * 8, )]
            + [(CMD.RD64, 0x100, None)]
        )
        assert stats.writes_shadowed == 1
        assert stats.mismatches == 0

    def test_atomic_old_value_checked(self):
        sim, ch = mk_checker(host=None)
        # Serialise same-address atomics (ordering caveat in module docs).
        ch.run([(CMD.WR16, 0x40, [100, 200])])
        ch.run([(CMD.ADD16, 0x40, [1, 2])])
        ch.run([(CMD.ADD16, 0x40, [1, 2])])
        stats = ch.run([(CMD.RD16, 0x40, None)])
        assert stats.atomics_shadowed == 2
        assert stats.mismatches == 0
        assert ch.shadow.read(0x40, 16) == [102, 204]

    def test_detects_injected_storage_corruption(self):
        """Corrupt a bank behind the simulator's back: the checker must
        catch the read mismatch — proof it actually checks."""
        sim, ch = mk_checker()
        ch.run([(CMD.WR64, 0x200, [5] * 8)])
        dev = sim.devices[0]
        d = dev.amap.decode(0x200)
        rel = d.dram * dev.amap.block_size + d.offset
        dev.vaults[d.vault].banks[d.bank].write(rel, [6] * 8)  # corruption
        with pytest.raises(CheckFailure):
            ch.run([(CMD.RD64, 0x200, None)])

    def test_mismatch_recorded_when_not_raising(self):
        sim, ch = mk_checker(raise_on_mismatch=False)
        ch.run([(CMD.WR64, 0x200, [5] * 8)])
        dev = sim.devices[0]
        d = dev.amap.decode(0x200)
        rel = d.dram * dev.amap.block_size + d.offset
        dev.vaults[d.vault].banks[d.bank].write(rel, [9] * 8)
        stats = ch.run([(CMD.RD64, 0x200, None)])
        assert stats.mismatches == 1

    def test_error_response_counts_as_mismatch(self):
        sim, ch = mk_checker(raise_on_mismatch=False)
        ch.cub = 5  # unroutable cube
        stats = ch.run([(CMD.RD64, 0x0, None)])
        assert stats.mismatches == 1


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["w", "r", "a"]),
            st.integers(0, 255),           # distinct 64-byte block index
            st.integers(0, (1 << 32) - 1),  # data seed
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_verify_clean(ops):
    """Random write/read/atomic programs (serialised per step) always
    verify against the golden model — end-to-end functional equivalence
    of the cycle simulator and the reference semantics."""
    sim, ch = mk_checker()
    for op, block, data in ops:
        addr = block * 64
        if op == "w":
            ch.run([(CMD.WR64, addr, [data] * 8)])
        elif op == "a":
            ch.run([(CMD.ADD16, addr, [data, 1])])
        else:
            ch.run([(CMD.RD64, addr, None)])
    assert ch.stats.mismatches == 0
