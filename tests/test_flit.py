"""Unit tests for FLIT arithmetic (repro.packets.flit)."""

import pytest

from repro.packets.flit import (
    FLIT_BYTES,
    MAX_FLITS,
    MAX_PAYLOAD_BYTES,
    MIN_FLITS,
    flits_for_payload,
    is_legal_flit_count,
    packet_bytes,
    payload_bytes,
)


def test_constants_match_spec():
    """Paper III.C: 16-byte FLITs, max packet 9 FLITs = 144 bytes."""
    assert FLIT_BYTES == 16
    assert MAX_FLITS == 9
    assert MIN_FLITS == 1
    assert MAX_PAYLOAD_BYTES == 128


@pytest.mark.parametrize(
    "payload,expected",
    [(0, 1), (16, 2), (32, 3), (64, 5), (128, 9)],
)
def test_flits_for_payload(payload, expected):
    assert flits_for_payload(payload) == expected


@pytest.mark.parametrize("bad", [-16, 144, 8, 17, 129])
def test_flits_for_payload_rejects_bad_sizes(bad):
    with pytest.raises(ValueError):
        flits_for_payload(bad)


@pytest.mark.parametrize("flits", range(1, 10))
def test_payload_bytes_inverts_flits_for_payload(flits):
    assert flits_for_payload(payload_bytes(flits)) == flits


@pytest.mark.parametrize("bad", [0, -1, 10, 100])
def test_payload_bytes_rejects_bad_counts(bad):
    with pytest.raises(ValueError):
        payload_bytes(bad)


def test_packet_bytes():
    assert packet_bytes(1) == 16
    assert packet_bytes(9) == 144


def test_packet_bytes_rejects_bad_counts():
    with pytest.raises(ValueError):
        packet_bytes(0)
    with pytest.raises(ValueError):
        packet_bytes(10)


def test_is_legal_flit_count():
    assert all(is_legal_flit_count(n) for n in range(1, 10))
    assert not is_legal_flit_count(0)
    assert not is_legal_flit_count(10)
