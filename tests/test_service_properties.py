"""Property-based tests for the admission layer (Hypothesis).

Two QoS invariants that example-based tests can only sample:

* a :class:`TokenBucket` never goes meaningfully negative and never
  grants more than its budget — ``burst + rate * elapsed`` — however
  the ready/consume calls interleave over time;
* the admission controller always grants strictly in ``(priority,
  arrival)`` order, for any fleet composition.

Skipped cleanly when Hypothesis is not installed (it is in CI).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.service import (  # noqa: E402
    AdmissionController,
    PriorityClass,
    ServiceConfig,
    TenantSpec,
    TokenBucket,
)

#: Tolerance for float rounding in the budget bound.
_EPS = 1e-9


@st.composite
def bucket_runs(draw):
    """A bucket shape plus a monotone sequence of poll cycles."""
    rate = draw(st.floats(min_value=0.0, max_value=4.0,
                          allow_nan=False, allow_infinity=False))
    burst = draw(st.floats(min_value=1.0, max_value=32.0,
                           allow_nan=False, allow_infinity=False))
    steps = draw(st.lists(st.integers(min_value=0, max_value=7),
                          min_size=1, max_size=200))
    return rate, burst, steps


class TestTokenBucketProperties:
    @given(bucket_runs())
    @settings(max_examples=200, deadline=None)
    def test_tokens_never_negative(self, run):
        rate, burst, steps = run
        bucket = TokenBucket(rate, burst)
        cycle = 0
        for gap in steps:
            cycle += gap
            if bucket.ready(cycle):
                bucket.consume(cycle)
            # A consume is gated on ready(), so the balance can dip at
            # most a rounding hair below zero.
            assert bucket.tokens >= -_EPS
            assert bucket.tokens <= bucket.burst + _EPS

    @given(bucket_runs())
    @settings(max_examples=200, deadline=None)
    def test_grants_conserve_budget(self, run):
        rate, burst, steps = run
        bucket = TokenBucket(rate, burst)
        if bucket.rate <= 0:
            return  # unlimited mode: no budget to conserve
        granted = 0
        cycle = 0
        for gap in steps:
            cycle += gap
            if bucket.ready(cycle):
                bucket.consume(cycle)
                granted += 1
            budget = bucket.burst + bucket.rate * cycle
            assert granted <= budget + _EPS

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=1_000))
    @settings(max_examples=100, deadline=None)
    def test_idle_refill_caps_at_burst(self, start, gap):
        bucket = TokenBucket(rate=2.0, burst=8.0)
        bucket.consume(start)
        assert bucket.ready(start + gap) or gap == 0
        assert bucket.tokens <= bucket.burst + _EPS


def _fleet_strategy():
    klass = st.sampled_from(list(PriorityClass))
    return st.lists(klass, min_size=1, max_size=40)


class TestAdmissionOrderProperties:
    @given(_fleet_strategy())
    @settings(max_examples=100, deadline=None)
    def test_grant_order_monotone_in_priority_then_arrival(self, fleet):
        config = ServiceConfig()
        adm = AdmissionController(config)
        for i, klass in enumerate(fleet):
            spec = TenantSpec(tenant_id=f"t{i}", requests=iter(()),
                              klass=klass)
            adm.register(spec, tick=0)
        order = []
        while True:
            ticket = adm.next_grant(tick=1)
            if ticket is None:
                break
            order.append((int(ticket.spec.klass), ticket.seq))
        assert order == sorted(order)
        assert len(order) == len(fleet)

    @given(_fleet_strategy(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_bounded_queue_rejections_balance(self, fleet, max_waiting):
        config = ServiceConfig(max_waiting=max_waiting)
        adm = AdmissionController(config)
        for i, klass in enumerate(fleet):
            spec = TenantSpec(tenant_id=f"t{i}", requests=iter(()),
                              klass=klass)
            adm.register(spec, tick=0)
        granted = 0
        while adm.next_grant(tick=1) is not None:
            granted += 1
        assert adm.registered == granted + adm.rejected
        assert adm.rejected == max(0, len(fleet) - max_waiting)
