"""Tests for the evaluation analysis layer (repro.analysis)."""

import numpy as np
import pytest

from repro.analysis.figures import (
    Figure5Data,
    SERIES_NAMES,
    downsample,
    extract_figure5,
    run_figure5,
)
from repro.analysis.report import (
    render_dict,
    render_figure5_summary,
    render_table1,
)
from repro.analysis.tables import (
    PAPER_SPEEDUPS,
    Table1Row,
    paper_speedups,
    run_table1,
    speedups,
)
from repro.core.config import DeviceConfig, PAPER_TABLE1_CYCLES
from repro.trace.events import EventType, TraceEvent
from repro.trace.stats import CycleSeries, TraceStats
from repro.workloads.random_access import RandomAccessConfig


class TestSpeedupAggregates:
    def test_paper_rows_reproduce_paper_aggregates(self):
        """Sanity-check the aggregate definitions against the paper's
        own numbers: 1.7x (banks) and 2.319x (links)."""
        sp = paper_speedups()
        assert sp["bank_speedup"] == pytest.approx(1.70, abs=0.01)
        assert sp["link_speedup"] == pytest.approx(2.319, abs=0.001)

    def test_paper_speedup_constants(self):
        assert PAPER_SPEEDUPS == {"bank_speedup": 1.7, "link_speedup": 2.319}

    def test_speedups_with_missing_rows(self):
        rows = [Table1Row("4-Link; 8-Bank; 2GB", 100, None, None)]
        assert speedups(rows) == {}


class TestRunTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_table1(num_requests=2048)

    def test_four_rows_in_order(self, rows):
        assert [r.label for r in rows] == list(PAPER_TABLE1_CYCLES)

    def test_shape_matches_paper_ordering(self, rows):
        """The reproduced Table I preserves the paper's ranking: every
        added resource reduces simulated cycles, 4L8B slowest, 8L16B
        fastest."""
        cycles = {r.label: r.cycles for r in rows}
        assert (
            cycles["8-Link; 16-Bank; 8GB"]
            < min(cycles["8-Link; 8-Bank; 4GB"], cycles["4-Link; 16-Bank; 4GB"])
            <= max(cycles["8-Link; 8-Bank; 4GB"], cycles["4-Link; 16-Bank; 4GB"])
            < cycles["4-Link; 8-Bank; 2GB"]
        )

    def test_speedup_factors_in_paper_direction(self, rows):
        sp = speedups(rows)
        assert sp["bank_speedup"] > 1.2
        assert sp["link_speedup"] > 1.4

    def test_all_requests_completed(self, rows):
        for r in rows:
            assert r.result.run.responses_received == 2048
            assert r.result.run.errors_received == 0

    def test_render_table1(self, rows):
        text = render_table1(rows, num_requests=2048)
        assert "TABLE I" in text
        assert "4-Link; 8-Bank; 2GB" in text
        assert "3,404,553" in text  # paper column present
        assert "bank speedup" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def data(self):
        return run_figure5(
            DeviceConfig(num_links=4, num_banks=8, capacity=2),
            RandomAccessConfig(num_requests=2048),
        )

    def test_all_five_series_present(self, data):
        assert set(data.series) == set(SERIES_NAMES)

    def test_read_write_totals_match_workload(self, data):
        """50/50 mix: reads + writes == all requests, roughly balanced."""
        totals = data.totals()
        assert totals["read_requests"] + totals["write_requests"] == 2048
        assert 0.4 < totals["read_requests"] / 2048 < 0.6

    def test_series_lengths_match_cycles(self, data):
        for s in data.series.values():
            assert len(s.values) == data.num_cycles

    def test_vault_utilization_covers_all_vaults(self, data):
        assert data.vault_utilization.shape == (16,)
        assert data.vault_utilization.sum() == 2048
        assert np.all(data.vault_utilization > 0)

    def test_conflicts_were_observed(self, data):
        """A random 50/50 workload at full injection pressure must
        produce bank conflicts — the central Figure 5 series."""
        assert data.totals()["bank_conflicts"] > 0

    def test_means_and_peaks(self, data):
        assert data.peaks()["read_requests"] >= 1
        assert data.means()["read_requests"] > 0

    def test_render_summary(self, data):
        text = render_figure5_summary(data)
        assert "Figure 5" in text
        assert "bank_conflicts" in text
        assert "vault utilisation" in text


class TestDownsample:
    def test_preserves_total(self):
        s = CycleSeries("x", np.arange(100, dtype=np.int64))
        b = downsample(s, buckets=10)
        assert b.sum() == s.values.sum()
        assert len(b) == 10

    def test_empty_series(self):
        s = CycleSeries("x", np.zeros(0, dtype=np.int64))
        assert downsample(s, buckets=5).tolist() == [0] * 5

    def test_bad_buckets(self):
        s = CycleSeries("x", np.ones(10, dtype=np.int64))
        with pytest.raises(ValueError):
            downsample(s, buckets=0)


class TestExtractFromStats:
    def test_extract_figure5(self):
        st = TraceStats(num_vaults=4)
        st.add(TraceEvent(type=EventType.RQST_READ, cycle=0, vault=0))
        st.add(TraceEvent(type=EventType.XBAR_RQST_STALL, cycle=1))
        data = extract_figure5(st, label="unit")
        assert isinstance(data, Figure5Data)
        assert data.totals()["read_requests"] == 1
        assert data.totals()["xbar_rqst_stalls"] == 1


def test_render_dict():
    text = render_dict("stats", {"a": 1, "ratio": 1.5})
    assert "stats" in text and "ratio" in text and "1.5000" in text
