"""Tests for the in-DRAM RAS subsystem (repro.ras).

Covers the SECDED codec property guarantees (k=0 clean, k=1 corrected,
k=2 detected-uncorrectable), the fault models, the patrol scrubber, the
RAS registers (write-to-clear, MODE_READ + JTAG visibility), seeded
determinism, and the acceptance end-to-end scenarios: ECC-off
invariance, zero-fault invariance, no silent corruption under injected
single-bit faults, and double-bit faults surfacing as UEs.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DeviceConfig, SimConfig
from repro.core.simulator import HMCSim
from repro.packets.commands import CMD
from repro.packets.packet import build_memrequest
from repro.ras import codec
from repro.ras.faultmap import (
    CORRECTED_ACCESS,
    CORRECTED_SCRUB,
    OVERWRITTEN,
    PENDING,
    DeviceFaultMap,
)
from repro.registers.regdefs import RegClass, REGISTER_MAP, index_by_name, physical_index
from repro.trace.binfmt import decode_event, encode_event
from repro.trace.events import EventType, TraceEvent
from repro.trace.tracer import MemorySink
from repro.workloads.random_access import RandomAccessConfig, run_random_access

WORDS = st.integers(min_value=0, max_value=(1 << 64) - 1)
BITS = st.integers(min_value=0, max_value=codec.CODEWORD_BITS - 1)

RASCE_PHYS = physical_index(index_by_name("RASCE"))
RASUE_PHYS = physical_index(index_by_name("RASUE"))
RASSCR_PHYS = physical_index(index_by_name("RASSCR"))


def _ecc_sim(links: int = 1, **ras_kw) -> HMCSim:
    cfg = SimConfig(device=DeviceConfig(ecc_enabled=True), **ras_kw)
    sim = HMCSim(cfg)
    for link in range(links):
        sim.attach_host(0, link)
    return sim


def _locate(dev, addr: int):
    """(vault, bank, atom) triple of a device byte address."""
    d = dev.amap.decode(addr)
    rel = d.dram * dev.amap.block_size + d.offset
    return d.vault, d.bank, rel // 16


class TestCodecProperties:
    """The SECDED guarantees, property-tested over random words."""

    @given(WORDS)
    def test_k0_clean_roundtrip(self, word):
        check = codec.encode_word(word)
        w, c, status = codec.decode_word(word, check)
        assert status == codec.CLEAN
        assert (w, c) == (word, check)

    @given(WORDS, BITS)
    def test_k1_corrected_to_original(self, word, bit):
        check = codec.encode_word(word)
        w2, c2 = codec.flip(word, check, bit)
        w, c, status = codec.decode_word(w2, c2)
        assert status == codec.CE
        assert w == word
        assert c == check

    @given(WORDS, BITS, BITS)
    def test_k2_flagged_uncorrectable(self, word, b0, b1):
        if b0 == b1:
            return
        check = codec.encode_word(word)
        w2, c2 = codec.flip(*codec.flip(word, check, b0), b1)
        _, _, status = codec.decode_word(w2, c2)
        assert status == codec.UE

    @settings(max_examples=20)
    @given(st.lists(WORDS, min_size=1, max_size=64))
    def test_vectorized_matches_scalar(self, words):
        arr = np.array(words, dtype=np.uint64)
        checks = codec.encode(arr)
        for i, w in enumerate(words):
            assert int(checks[i]) == codec.encode_word(w)
        d, c, s = codec.decode(arr, checks)
        assert (s == codec.CLEAN).all()
        assert (d == arr).all()

    def test_zero_check_constant(self):
        assert codec.ZERO_CHECK == codec.encode_word(0)

    def test_flip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            codec.flip(0, 0, codec.CODEWORD_BITS)


class TestFaultMap:
    def test_overlay_none_when_clean(self):
        fm = DeviceFaultMap()
        assert fm.overlay(0, 0, 5, 1, 2, 3, 4) is None

    def test_upset_flips_and_resolves(self):
        fm = DeviceFaultMap()
        rec = fm.add_upset(10, 0, 1, 7, bit=3)
        w0, w1, c0, c1 = fm.overlay(0, 1, 7, 0, 0, 0, 0)
        assert w0 == 1 << 3 and (w1, c0, c1) == (0, 0, 0)
        assert rec.outcome == PENDING
        fm.resolve(0, 1, 7, CORRECTED_ACCESS)
        assert rec.outcome == CORRECTED_ACCESS
        assert fm.overlay(0, 1, 7, 0, 0, 0, 0) is None
        assert fm.pending_upsets == 0

    def test_check_bit_upset_targets_check_field(self):
        fm = DeviceFaultMap()
        fm.add_upset(0, 0, 0, 0, bit=codec.DATA_BITS)  # first check bit, half 0
        w0, w1, c0, c1 = fm.overlay(0, 0, 0, 0, 0, 0, 0)
        assert (w0, w1, c1) == (0, 0, 0) and c0 == 1

    def test_upset_bounds(self):
        fm = DeviceFaultMap()
        with pytest.raises(ValueError):
            fm.add_upset(0, 0, 0, 0, bit=2 * codec.CODEWORD_BITS)

    def test_stuck_cell_forces_value(self):
        fm = DeviceFaultMap()
        fm.add_stuck(0, 0, 3, bit=5, value=1)
        w0, _, _, _ = fm.overlay(0, 0, 3, 0, 0, 0, 0)
        assert w0 == 1 << 5
        # Stuck state survives resolve (it is a hard fault).
        fm.resolve(0, 0, 3, CORRECTED_SCRUB)
        assert fm.overlay(0, 0, 3, 0, 0, 0, 0) is not None

    def test_row_fault_covers_whole_row(self):
        fm = DeviceFaultMap()
        fm.add_row_fault(0, 0, row=1)
        from repro.ras.faultmap import ATOMS_PER_ROW

        assert fm.overlay(0, 0, ATOMS_PER_ROW, 0, 0, 0, 0) is not None
        assert fm.overlay(0, 0, ATOMS_PER_ROW - 1, 0, 0, 0, 0) is None


class TestEccDatapath:
    def test_single_bit_corrected_on_access(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x1000, [0xDEAD, 0xBEEF])
        v, b, atom = _locate(dev, 0x1000)
        dev.ras.inject_upset(v, b, atom, bit=7)
        assert dev.peek(0x1000) == [0xDEAD, 0xBEEF]
        assert dev.ras.log.ce_count == 1
        assert dev.ras.log.ue_count == 0
        # Writeback repaired the stored copy: next read is clean.
        assert dev.peek(0x1000) == [0xDEAD, 0xBEEF]
        assert dev.ras.log.ce_count == 1
        assert dev.ras.faults.upsets[0].outcome == CORRECTED_ACCESS

    def test_parity_and_check_bit_upsets_corrected(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x2000, [5, 6])
        v, b, atom = _locate(dev, 0x2000)
        for bit in (codec.DATA_BITS, codec.CODEWORD_BITS - 1,
                    codec.CODEWORD_BITS + 9):
            dev.ras.inject_upset(v, b, atom, bit=bit)
            assert dev.peek(0x2000) == [5, 6]
        assert dev.ras.log.ce_count == 3
        assert dev.ras.log.ue_count == 0

    def test_double_bit_surfaces_as_ue_not_silent(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x3000, [0x1234, 0x5678])
        v, b, atom = _locate(dev, 0x3000)
        dev.ras.inject_double(v, b, atom)
        got = dev.peek(0x3000)
        assert got[0] != 0x1234          # data observed corrupted...
        assert dev.ras.log.ue_count == 1  # ...but loudly, as a UE
        assert dev.ras.log.events[-1].kind == "UE"

    def test_overwrite_clears_pending_fault(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x4000, [1, 2])
        v, b, atom = _locate(dev, 0x4000)
        rec = dev.ras.inject_upset(v, b, atom, bit=0)
        dev.poke(0x4000, [3, 4])
        assert rec.outcome == OVERWRITTEN
        assert dev.peek(0x4000) == [3, 4]
        assert dev.ras.log.ce_count == 0

    def test_stuck_cell_recurs_after_correction(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x5000, [0, 0])
        v, b, atom = _locate(dev, 0x5000)
        dev.ras.inject_stuck(v, b, atom, bit=5, value=1)
        assert dev.peek(0x5000) == [0, 0]
        assert dev.peek(0x5000) == [0, 0]
        # Hard fault: every observation re-detects the flipped cell.
        assert dev.ras.log.ce_count == 2

    def test_row_fault_reads_as_ue(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x6000, [7, 8])
        v, b, atom = _locate(dev, 0x6000)
        from repro.ras.faultmap import ATOMS_PER_ROW

        dev.ras.inject_row_fault(v, b, atom // ATOMS_PER_ROW)
        dev.peek(0x6000)
        assert dev.ras.log.ue_count == 2  # both 64-bit halves flagged


class TestRasRegisters:
    def _counts(self, sim):
        return (sim.jtag_reg_read(0, RASCE_PHYS),
                sim.jtag_reg_read(0, RASUE_PHYS),
                sim.jtag_reg_read(0, RASSCR_PHYS))

    def test_register_classes(self):
        for name in ("RASCE", "RASUE", "RASSCR"):
            assert REGISTER_MAP[index_by_name(name)].cls is RegClass.RWS

    def test_zero_faults_read_zero_via_mode_read_and_jtag(self):
        sim = _ecc_sim(links=4, ras_scrub_interval=0)
        dev = sim.devices[0]
        dev.poke(0x100, [1, 2])
        sim.send(build_memrequest(0, 0x100, 1, CMD.RD16, link=0))
        sim.clock(20)
        assert list(sim.recv().payload) == [1, 2]
        assert self._counts(sim) == (0, 0, 0)
        for phys in (RASCE_PHYS, RASUE_PHYS, RASSCR_PHYS):
            sim.send(build_memrequest(0, phys, 9, CMD.MD_RD, link=0))
            sim.clock(10)
            assert sim.recv().payload[0] == 0

    def test_counters_visible_through_both_paths(self):
        sim = _ecc_sim(links=4)
        dev = sim.devices[0]
        dev.poke(0x700, [1, 2])
        v, b, atom = _locate(dev, 0x700)
        dev.ras.inject_upset(v, b, atom, bit=3)
        dev.ras.inject_double(v, b, atom, half=1)
        dev.peek(0x700)
        sim.clock(1)  # stage 6 mirrors the counters
        assert sim.jtag_reg_read(0, RASCE_PHYS) == dev.ras.log.ce_count >= 1
        assert sim.jtag_reg_read(0, RASUE_PHYS) == dev.ras.log.ue_count >= 1
        sim.send(build_memrequest(0, RASUE_PHYS, 5, CMD.MD_RD, link=0))
        sim.clock(10)
        assert sim.recv().payload[0] == dev.ras.log.ue_count

    def test_write_to_clear(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        dev.poke(0x800, [1, 2])
        v, b, atom = _locate(dev, 0x800)
        dev.ras.inject_upset(v, b, atom, bit=1)
        dev.peek(0x800)
        sim.clock(1)
        assert sim.jtag_reg_read(0, RASCE_PHYS) == 1
        sim.jtag_reg_write(0, RASCE_PHYS, 1)  # any value clears
        sim.clock(1)
        assert sim.jtag_reg_read(0, RASCE_PHYS) == 0
        # Counting resumes from zero, not from the pre-clear total.
        dev.ras.inject_upset(v, b, atom, bit=2)
        dev.peek(0x800)
        sim.clock(1)
        assert sim.jtag_reg_read(0, RASCE_PHYS) == 1
        assert dev.ras.log.ce_count == 2


class TestScrubber:
    def test_scrub_all_covers_every_touched_atom(self):
        sim = _ecc_sim()
        dev = sim.devices[0]
        for i in range(32):
            dev.poke(i * 64, [i, i + 1])
        touched = sum(
            len(bank.touched_atoms()) for v in dev.vaults for bank in v.banks
        )
        assert dev.ras.scrub_all() == touched

    def test_patrol_corrects_pending_upset(self):
        sim = _ecc_sim(ras_scrub_interval=4, ras_scrub_rows=8)
        dev = sim.devices[0]
        dev.poke(0x900, [9, 9])
        v, b, atom = _locate(dev, 0x900)
        rec = dev.ras.inject_upset(v, b, atom, bit=11)
        # Never accessed by the host: only the patrol can repair it.
        sim.clock(200)
        assert rec.outcome == CORRECTED_SCRUB
        assert dev.ras.scrub_ce == 1
        assert dev.ras.faults.pending_upsets == 0
        assert dev.peek(0x900) == [9, 9]
        assert sim.jtag_reg_read(0, RASSCR_PHYS) == dev.ras.scrubber.atoms_scrubbed

    def test_disabled_scrubber_never_steps(self):
        sim = _ecc_sim(ras_scrub_interval=0)
        sim.devices[0].poke(0, [1, 1])
        sim.clock(50)
        assert sim.devices[0].ras.scrubber.steps == 0
        assert sim.devices[0].ras.scrubber.atoms_scrubbed == 0


class TestDeterminism:
    def _run(self, ras_seed):
        scfg = SimConfig(
            device=DeviceConfig(ecc_enabled=True),
            ras_seed=ras_seed,
            ras_fit_rate=5e6,
            ras_scrub_interval=32,
        )
        result = run_random_access(
            scfg.device,
            RandomAccessConfig(num_requests=512, seed=3),
            sim_config=scfg,
            keep_sim=True,
        )
        dev = result.sim.devices[0]
        log = dev.ras.log.as_tuples()
        upsets = [(r.cycle, r.vault, r.bank, r.atom, r.bit, r.outcome)
                  for r in dev.ras.faults.upsets]
        return result.cycles, log, upsets

    def test_same_seed_identical_logs(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_diverges(self):
        a, b = self._run(11), self._run(12)
        assert a[2] != b[2]  # different upset placement

    def test_config_fault_placement_survives_reset(self):
        sim = _ecc_sim(ras_stuck_cells=5, ras_row_faults=2)
        dev = sim.devices[0]
        before = (dict(dev.ras.faults.stuck), set(dev.ras.faults.failed_rows))
        sim.reset()
        after = (dict(dev.ras.faults.stuck), set(dev.ras.faults.failed_rows))
        assert before == after


class TestAcceptance:
    """The ISSUE's end-to-end acceptance scenarios."""

    def test_ecc_on_zero_faults_cycles_unchanged(self):
        cfg = RandomAccessConfig(num_requests=512, seed=1)
        base = run_random_access(DeviceConfig(), cfg)
        ecc = run_random_access(
            DeviceConfig(ecc_enabled=True),
            cfg,
            sim_config=SimConfig(
                device=DeviceConfig(ecc_enabled=True), ras_scrub_interval=64
            ),
        )
        assert ecc.cycles == base.cycles
        r = ecc.sim_stats["ras"][0]
        assert r["ce"] == 0 and r["ue"] == 0

    def test_injected_single_bit_faults_never_silent(self):
        """Every injected upset is corrected on access, by the
        scrubber, or overwritten — none is left pending or silently
        absorbed — and a deliberate double-bit fault lands as a UE in
        the log and the register counters."""
        scfg = SimConfig(
            device=DeviceConfig(ecc_enabled=True),
            ras_seed=5,
            ras_fit_rate=2e5,
            ras_scrub_interval=32,
            ras_scrub_rows=8,
        )
        result = run_random_access(
            scfg.device,
            RandomAccessConfig(num_requests=2048, seed=2),
            sim_config=scfg,
            keep_sim=True,
        )
        sim = result.sim
        dev = sim.devices[0]
        assert dev.ras.upsets_injected > 0
        dev.ras.scrub_all()  # close the patrol over late arrivals
        assert dev.ras.faults.pending_upsets == 0
        allowed = {CORRECTED_ACCESS, CORRECTED_SCRUB, OVERWRITTEN}
        assert all(r.outcome in allowed for r in dev.ras.faults.upsets)
        assert dev.ras.log.ue_count == 0  # single-bit faults never escalate

        # Deliberate double-bit fault: a loud UE everywhere.
        dev.poke(0xA000, [1, 2])
        v, b, atom = _locate(dev, 0xA000)
        dev.ras.inject_double(v, b, atom)
        dev.peek(0xA000)
        assert dev.ras.log.ue_count == 1
        sim.clock(1)
        assert sim.jtag_reg_read(0, RASUE_PHYS) >= 1


class TestRasTracing:
    def test_ce_and_ue_events_emitted(self):
        sim = _ecc_sim()
        sink = sim.trace_to_memory(mask=EventType.RAS)
        dev = sim.devices[0]
        dev.poke(0xB00, [1, 2])
        v, b, atom = _locate(dev, 0xB00)
        dev.ras.inject_upset(v, b, atom, bit=4)
        dev.peek(0xB00)
        dev.ras.inject_double(v, b, atom)
        dev.peek(0xB00)
        types = [e.type for e in sink.events]
        assert EventType.RAS_CE in types
        assert EventType.RAS_UE in types
        ce = next(e for e in sink.events if e.type is EventType.RAS_CE)
        assert (ce.vault, ce.bank) == (v, b)
        assert ce.extra["atom"] == atom

    def test_scrub_step_event(self):
        sim = _ecc_sim(ras_scrub_interval=8)
        sink = sim.trace_to_memory(mask=EventType.RAS_SCRUB)
        sim.devices[0].poke(0, [1, 1])
        sim.clock(20)
        assert any(e.type is EventType.RAS_SCRUB for e in sink.events)

    def test_binfmt_roundtrip_ras_types(self):
        for etype in (EventType.RAS_CE, EventType.RAS_UE, EventType.RAS_SCRUB):
            ev = TraceEvent(type=etype, cycle=42, dev=0, vault=3, bank=1,
                            extra={"atom": 9, "half": 0, "source": "scrub"})
            back = decode_event(io.BytesIO(encode_event(ev)))
            assert back.type is etype
            assert back.extra == ev.extra

    def test_binfmt_legacy_bytes_unchanged(self):
        # Every pre-RAS event type still stores its raw value verbatim
        # in the u16 type field (byte-for-byte stream compatibility).
        import struct

        for etype in (EventType.RQST_READ, EventType.MODE_ACCESS,
                      EventType.SUBCYCLE):
            blob = encode_event(TraceEvent(type=etype, cycle=1))
            (_, raw_type) = struct.unpack_from("<HH", blob)
            assert raw_type == int(etype)


class TestReliabilityAnalysis:
    def test_sweep_grid_and_render(self):
        from repro.analysis.reliability import ras_sweep, render_reliability

        cells = ras_sweep(
            DeviceConfig(),
            fit_rates=[0.0, 5e6],
            scrub_intervals=[0, 64],
            cfg=RandomAccessConfig(num_requests=256, seed=1),
        )
        assert len(cells) == 4
        clean = cells[0]
        assert clean.ce == clean.ue == clean.upsets_injected == 0
        noisy_scrubbed = cells[3]
        assert noisy_scrubbed.upsets_injected > 0
        assert noisy_scrubbed.upsets_pending == 0
        assert noisy_scrubbed.atoms_scrubbed > 0
        assert 0 < noisy_scrubbed.scrub_bw_overhead
        text = render_reliability(cells)
        assert "FIT rate" in text and "bw ovh" in text

    def test_statdump_includes_ras(self):
        from repro.analysis.statdump import dump_stats

        sim = _ecc_sim()
        tree = dump_stats(sim)
        assert "ras" in tree["devices"][0]
