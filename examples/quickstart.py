#!/usr/bin/env python
"""Quickstart: the paper's Figure 4 calling sequence, both APIs.

Runs the same tiny transaction flow twice:

1. through the Pythonic :class:`repro.HMCSim` API, and
2. through the C-style facade (``hmcsim_init`` / ``hmcsim_send`` / ...)
   that transliterates the paper's Fig. 4 listing.

Usage::

    python examples/quickstart.py
"""

from repro import CMD, HMCSim, build_memrequest
from repro.core.api import (
    hmcsim_build_memrequest,
    hmcsim_clock,
    hmcsim_decode_packet,
    hmcsim_free,
    hmcsim_init,
    hmcsim_link_config,
    hmcsim_recv,
    hmcsim_send,
    hmcsim_t,
)
from repro.core.errors import E_NODATA, E_OK


def pythonic() -> None:
    print("=== Pythonic API ===")
    # Section A: init the device (4-link, 8 banks/vault, 2 GB).
    sim = HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2)

    # Section B: configure the link topology — all four links to the host.
    for link in range(4):
        sim.attach_host(dev=0, link=link)

    # Section C: build and send a 64-byte write, then read it back.
    payload = [0x1111 * (i + 1) for i in range(8)]
    sim.send(build_memrequest(cub=0, addr=0x2_0000, tag=1, cmd=CMD.WR64,
                              payload=payload, link=0))
    sim.send(build_memrequest(cub=0, addr=0x2_0000, tag=2, cmd=CMD.RD64, link=1))

    # Clock the sim until both responses arrive.
    responses = []
    while len(responses) < 2:
        sim.clock()
        responses += sim.recv_all()

    for rsp in sorted(responses, key=lambda r: r.tag):
        latency = rsp.completed_at - rsp.injected_at
        print(f"  tag {rsp.tag}: {rsp.cmd.name:8} latency {latency} cycles "
              f"payload={[hex(w) for w in rsp.payload[:2]]}...")
    read = next(r for r in responses if r.tag == 2)
    assert list(read.payload) == payload, "read data must match the write"
    print(f"  stats: {sim.stats()}")

    # Section A: free the devices.
    sim.free()


def c_style() -> None:
    print("=== C-style facade (Fig. 4) ===")
    # Section A. Init the devices.
    hmc = hmcsim_t()
    ret = hmcsim_init(hmc, num_devs=1, num_links=4, num_vaults=16,
                      queue_depth=64, num_banks=8, num_drams=8,
                      capacity=2, xbar_depth=128)
    assert ret == E_OK

    # Section B. Config the link topology.
    for i in range(4):
        ret = hmcsim_link_config(hmc, 0, i, hmc.sim.host_cub, 0, "host")
        assert ret == E_OK

    # Section C. Build a request packet.
    payload = [0] * 8
    ret, head, tail, packet = hmcsim_build_memrequest(
        hmc, 0, 0x1000, 17, "RD_64", 0, payload)
    assert ret == E_OK
    print(f"  head=0x{head:016x} tail=0x{tail:016x} ({len(packet)} words)")

    # Section C. Send the request.
    ret = hmcsim_send(hmc, packet)
    assert ret == E_OK

    # Clock the sim until the response arrives.
    while True:
        hmcsim_clock(hmc)
        ret, words = hmcsim_recv(hmc, 0, 0)
        if ret != E_NODATA:
            break
    _, fields = hmcsim_decode_packet(words)
    print(f"  response: cmd={fields['cmd']} tag={fields['tag']} "
          f"flits={fields['flits']}")
    assert fields["tag"] == 17

    # Section A. Free the devices.
    assert hmcsim_free(hmc) == E_OK


if __name__ == "__main__":
    pythonic()
    print()
    c_style()
    print("\nquickstart OK")
