#!/usr/bin/env python
"""Visualise vault congestion: occupancy heatmaps per workload.

Samples every vault's request-queue occupancy each cycle and renders an
ASCII heatmap (vaults × time).  Uniform random traffic lights all rows
evenly; a vault-pinning stride lights exactly one — the congestion view
behind the paper's bank/vault utilisation discussion (§VI.B).

Usage::

    python examples/congestion_heatmap.py [--requests N]
"""

import argparse
import sys

from repro.analysis.occupancy import sample_run
from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.topology.builder import build_simple
from repro.workloads.random_access import RandomAccessConfig, random_access_requests
from repro.workloads.stride import stride_requests


def fresh():
    sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
    return sim, Host(sim)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=4096)
    args = parser.parse_args(argv)

    print("=== uniform random traffic ===")
    sim, host = fresh()
    res, sampler = sample_run(
        sim, host,
        random_access_requests(2 << 30, RandomAccessConfig(num_requests=args.requests)),
    )
    print(sampler.render_heatmap())
    print(f"mean occupancy {sampler.mean_vault_occupancy():.1f}, "
          f"hottest vault {sampler.hottest_vault()}, "
          f"{res.cycles:,} cycles\n")

    print("=== vault-pinning stride (stride = vaults x block) ===")
    sim, host = fresh()
    res, sampler = sample_run(
        sim, host,
        stride_requests(2 << 30, args.requests // 4, stride_bytes=16 * 64),
    )
    print(sampler.render_heatmap())
    print(f"mean occupancy {sampler.mean_vault_occupancy():.1f}, "
          f"hottest vault {sampler.hottest_vault()}, "
          f"{res.cycles:,} cycles")
    print("\nThe stride defeats the low-interleave map: every request "
          "lands in one vault, serialising on its banks while fifteen "
          "vaults idle.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
