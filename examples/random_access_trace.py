#!/usr/bin/env python
"""The paper's evaluation workload with full tracing (Figure 5 scenario).

Runs the §VI.A random-access harness against one of the four paper
device configurations with Figure-5 tracing enabled, prints the series
summary (bank conflicts, reads, writes, crossbar stalls, latency
penalties per cycle) and optionally dumps the bucketed series to CSV
for plotting.

Usage::

    python examples/random_access_trace.py [--config 0..3] [--requests N]
        [--csv out.csv] [--glibc-rand]
"""

import argparse
import csv
import sys

from repro.analysis.figures import downsample, run_figure5
from repro.analysis.report import render_figure5_summary
from repro.core.config import paper_config_pairs
from repro.workloads.random_access import RandomAccessConfig


def main(argv=None) -> int:
    configs = paper_config_pairs()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--config", type=int, default=0, choices=range(len(configs)),
                        help="paper configuration index: "
                        + "; ".join(f"{i}={label}" for i, (label, _) in enumerate(configs)))
    parser.add_argument("--requests", type=int, default=8192,
                        help="request count (paper: 33554432)")
    parser.add_argument("--csv", type=str, default=None,
                        help="write bucketed per-cycle series to this CSV")
    parser.add_argument("--buckets", type=int, default=100)
    parser.add_argument("--glibc-rand", action="store_true",
                        help="use the bit-exact glibc random() stream")
    args = parser.parse_args(argv)

    label, device = configs[args.config]
    print(f"running {args.requests:,} 64-byte requests (50/50 R/W) on {label}...")
    cfg = RandomAccessConfig(num_requests=args.requests,
                             use_glibc_rand=args.glibc_rand)
    data = run_figure5(device, cfg)

    print()
    print(render_figure5_summary(data))
    res = data.result
    print(f"\nsimulated runtime: {res.cycles:,} cycles "
          f"({res.requests_per_cycle:.2f} requests/cycle)")
    print(f"host-observed mean latency: {res.run.mean_latency:.1f} cycles, "
          f"p99 {res.run.p99_latency:.0f}")

    if args.csv:
        buckets = min(args.buckets, data.num_cycles)
        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            names = list(data.series)
            writer.writerow(["bucket"] + names)
            cols = [downsample(data.series[n], buckets) for n in names]
            for i in range(buckets):
                writer.writerow([i] + [int(c[i]) for c in cols])
        print(f"wrote {buckets}-bucket series to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
