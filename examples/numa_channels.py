#!/usr/bin/env python
"""NUMA-style multi-channel memory: several HMCSim objects, one host.

"An application may contain more than one HMC-Sim object in order to
simulate architectural characteristics such as non-uniform memory
access" (paper §IV.A) — "analogous to the current system on chip
methodology of utilizing multiple memory channels per socket" (§V.C).

This example interleaves a flat address space across 1, 2 and 4
independent channels and shows throughput scaling; then it slows one
channel's clock (an asymmetric / far channel) and shows the NUMA effect
on tail latency.

Usage::

    python examples/numa_channels.py [--requests N]
"""

import argparse
import sys

from repro.analysis.latency import LatencyDistribution, render
from repro.core.simulator import HMCSim
from repro.host.multichannel import MultiChannelHost
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.workloads.lcg import LCG


def mk_channels(n):
    return [
        build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        for _ in range(n)
    ]


def stream(n, span_bytes, seed=1):
    rng = LCG(seed)
    blocks = span_bytes // 64
    for _ in range(n):
        yield (CMD.RD64, rng.next_below(blocks) * 64, None)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=8192)
    args = parser.parse_args(argv)

    print("channel scaling (uniform random reads over the full space):")
    for nch in (1, 2, 4):
        mc = MultiChannelHost(mk_channels(nch), interleave_bytes=4096)
        res = mc.run(stream(args.requests, mc.total_capacity_bytes))
        print(f"  {nch} channel(s): {res.cycles:6,} host ticks "
              f"({res.responses_received / res.cycles:6.2f} req/tick), "
              f"balance {mc.traffic_balance():.3f}")

    print("\nasymmetric channels (one clocked at half rate):")
    for ratios, label in (( [1.0, 1.0], "1.0 / 1.0"), ([1.0, 0.5], "1.0 / 0.5")):
        mc = MultiChannelHost(mk_channels(2), interleave_bytes=4096, ratios=ratios)
        res = mc.run(stream(args.requests // 2, mc.total_capacity_bytes))
        dist = LatencyDistribution.from_samples(res.latencies)
        print(f"  ratios {label}: {res.cycles:6,} ticks, "
              + render(dist, label="latency"))
    print("\nThe half-rate channel services every other reference tick: "
          "requests landing there see roughly doubled latency — the "
          "non-uniformity NUMA-aware allocation would avoid.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
