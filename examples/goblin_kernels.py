#!/usr/bin/env python
"""Run assembly kernels on the Goblin-Core64-style barrel core.

HMC-Sim exists to support the Goblin-Core64 processor project (paper
§I); this example closes that loop: a miniature multithreaded core
executes real (tiny) programs whose loads, stores and fetch-and-adds
are HMC packets, and the latency-hiding effect of hardware threads is
measured directly.

Usage::

    python examples/goblin_kernels.py [--threads N]
"""

import argparse
import sys

from repro.core.simulator import HMCSim
from repro.cpu.assembler import assemble
from repro.cpu.core import GoblinCore
from repro.cpu.programs import (
    fib_kernel,
    gups_kernel,
    memcpy_kernel,
    vector_sum_kernel,
)
from repro.topology.builder import build_simple


def fresh_sim():
    return build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--threads", type=int, default=8)
    args = parser.parse_args(argv)

    print("single-thread kernels:")
    core = GoblinCore(fresh_sim(), assemble(fib_kernel(20, 0x100)))
    res = core.run()
    print(f"  fib(20)      = {core.peek_word(0x100):>6}  "
          f"({res.cycles:,} cycles, IPC {res.ipc:.2f})")

    core = GoblinCore(fresh_sim(), assemble(memcpy_kernel(0x1000, 0x9000, 64)))
    core.poke(0x1000, list(range(64)))
    res = core.run()
    ok = all(core.peek_word(0x9000 + 8 * i) == i for i in range(64))
    print(f"  memcpy(64w)  = {'ok' if ok else 'BAD':>6}  "
          f"({res.cycles:,} cycles, {res.loads} loads, {res.stores} stores)")

    print(f"\nlatency hiding with {args.threads} threads (vector sum):")
    for threads in (1, args.threads):
        programs = [
            assemble(vector_sum_kernel(0x10000 + 64 * 8 * t, 64, 0x100 + 16 * t))
            for t in range(threads)
        ]
        sim = fresh_sim()
        core = GoblinCore(sim, programs)
        for t in range(threads):
            core.poke(0x10000 + 64 * 8 * t, [1] * 64)
        res = core.run()
        total = sum(core.peek_word(0x100 + 16 * t) for t in range(threads))
        print(f"  {threads:>2} thread(s): {res.cycles:6,} cycles, "
              f"IPC {res.ipc:.3f}, sum={total}")

    print("\nconcurrent GUPS (fetch-and-add) with atomicity check:")
    programs = [
        assemble(gups_kernel(0x0, table_words=1 << 10, updates=64, seed=11 + t))
        for t in range(args.threads)
    ]
    sim = fresh_sim()
    core = GoblinCore(sim, programs)
    res = core.run()
    mass = sum(core.peek_word(a) for a in range(0, (1 << 10) * 8, 8))
    expect = args.threads * sum(range(1, 65))
    print(f"  {res.amos:,} atomic updates in {res.cycles:,} cycles "
          f"({res.amos / res.cycles:.2f} updates/cycle); "
          f"mass {mass} == expected {expect}: {mass == expect}")
    return 0 if mass == expect else 1


if __name__ == "__main__":
    sys.exit(main())
