#!/usr/bin/env python
"""GUPS-style atomic updates: exploring HMC read-modify-write throughput.

The paper's conclusion positions HMC-Sim for "early algorithm, system
and application design" on stacked memory; this example explores one
such question — how do the HMC atomic (ADD16) requests compare with an
equivalent read+modify+write sequence issued by the host?

Usage::

    python examples/gups_bandwidth.py [--updates N] [--links 4|8]
"""

import argparse
import sys

from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.workloads.gups import gups_requests
from repro.workloads.lcg import LCG


def run_atomics(links: int, updates: int) -> None:
    sim = build_simple(HMCSim(num_devs=1, num_links=links, num_banks=8,
                              capacity=2 if links == 4 else 4))
    host = Host(sim)
    res = host.run(gups_requests(sim.config.device.capacity_bytes, updates,
                                 table_bytes=1 << 24))
    per_cycle = res.responses_received / res.cycles
    print(f"  ADD16 atomics      : {res.cycles:8,} cycles "
          f"({per_cycle:.2f} updates/cycle, "
          f"mean latency {res.mean_latency:.1f})")


def run_read_modify_write(links: int, updates: int) -> None:
    """The software alternative: RD16, modify on the host, WR16."""
    sim = build_simple(HMCSim(num_devs=1, num_links=links, num_banks=8,
                              capacity=2 if links == 4 else 4))
    host = Host(sim)
    rng = LCG(1)
    slots = (1 << 24) // 16
    stream = []
    for _ in range(updates):
        addr = rng.next_below(slots) * 16
        stream.append((CMD.RD16, addr, None))
        stream.append((CMD.WR16, addr, [rng.next_u64(), 0]))
    res = host.run(stream)
    # Each update is two requests; normalise to updates.
    cycles = res.cycles
    print(f"  host RMW (RD16+WR16): {cycles:8,} cycles "
          f"({updates / cycles:.2f} updates/cycle)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--updates", type=int, default=4096)
    parser.add_argument("--links", type=int, default=4, choices=(4, 8))
    args = parser.parse_args(argv)

    print(f"GUPS-style updates on a {args.links}-link device, "
          f"{args.updates:,} updates into a 16 MB table:")
    run_atomics(args.links, args.updates)
    run_read_modify_write(args.links, args.updates)
    print("\nIn-memory atomics halve the request count and avoid the "
          "host round trip between read and write — the advantage the "
          "HMC atomic command class exists for.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
