#!/usr/bin/env python
"""Round-trip latency under dependent loads, by link policy and size.

A pointer chase issues one read at a time — the purest view of the
crossbar -> vault -> bank -> response path latency, including the
routed-latency penalty the paper's §VI.B corollary highlights for
non-co-located links.

Usage::

    python examples/pointer_chase_latency.py [--nodes N] [--hops N]
"""

import argparse
import sys

from repro.core.simulator import HMCSim
from repro.host.host import Host, LinkPolicy
from repro.topology.builder import build_simple
from repro.workloads.pointer_chase import pointer_chase_run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=128)
    parser.add_argument("--hops", type=int, default=128)
    args = parser.parse_args(argv)

    print(f"pointer chase: {args.nodes} nodes, {args.hops} dependent hops")
    print(f"{'policy':>12} {'mean':>8} {'min':>6} {'max':>6}  (cycles/hop)")
    for policy in (LinkPolicy.ROUND_ROBIN, LinkPolicy.RANDOM, LinkPolicy.LOCALITY):
        sim = build_simple(HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2))
        host = Host(sim, policy=policy)
        res = pointer_chase_run(sim, host, num_nodes=args.nodes, hops=args.hops)
        lat = res.latencies
        print(f"{policy.value:>12} {res.mean_latency:8.2f} "
              f"{min(lat):6d} {max(lat):6d}")
    print("\nThe locality policy sends each read down the link whose quad "
          "owns the target vault, avoiding the crossbar detour that the "
          "tracer records as a latency penalty.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
