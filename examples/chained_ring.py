#!/usr/bin/env python
"""Device chaining: a ring of four HMC cubes behind one host (Figure 1).

Demonstrates the chaining capability (§III.A): builds the Figure 1 ring
topology, spreads writes across all four cubes, reads them back, and
reports per-cube round-trip latency — showing the hop cost the ring's
wraparound link halves for the "far side" of the chain.

Usage::

    python examples/chained_ring.py [--devices N] [--requests N]
"""

import argparse
import sys

from repro.core.simulator import HMCSim
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_chain, build_ring
from repro.topology.route import host_distance
from repro.topology.validate import diagnose


def run_topology(name: str, sim: HMCSim, requests: int) -> None:
    report = diagnose(sim)
    print(f"\n--- {name}: {report.num_devices} cubes, "
          f"{report.chain_links} chain links, ok={report.ok}")
    dist = host_distance(sim)
    host = Host(sim)

    for cub in range(len(sim.devices)):
        # Write a signature into each cube, then read it back.
        stream = [(CMD.WR16, 0x40 * (i + 1), [cub, i]) for i in range(requests)]
        stream += [(CMD.RD16, 0x40 * (i + 1), None) for i in range(requests)]
        res = host.run(stream, cub=cub)
        assert res.errors_received == 0
        print(f"  cube {cub} (distance {dist[cub]}): "
              f"mean latency {res.mean_latency:6.1f} cycles, "
              f"{res.responses_received} responses")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--requests", type=int, default=64)
    args = parser.parse_args(argv)

    ring = build_ring(HMCSim(num_devs=args.devices, num_links=4,
                             num_banks=8, capacity=2))
    run_topology("ring", ring, args.requests)

    chain = build_chain(HMCSim(num_devs=args.devices, num_links=4,
                               num_banks=8, capacity=2))
    run_topology("chain", chain, args.requests)

    print("\nNote how the ring keeps the farthest cube's latency flat "
          "while the chain's grows with hop distance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
