#!/usr/bin/env python
"""One-command reproduction of the paper's full evaluation (§VI).

Runs Table I across the four device configurations, extracts the five
Figure 5 trace series for each, computes the speedup aggregates the
paper's text reports, and writes everything to a markdown report —
measured-vs-paper, side by side.

Usage::

    python examples/reproduce_paper.py [--requests N] [--out report.md]

The paper used 2^25 requests; the default here (2^14) preserves the
steady-state cycles/request ratio that the speedups measure.  Expect
~30 s at the default scale, hours at paper scale.
"""

import argparse
import sys
import time

from repro.analysis.figures import run_figure5
from repro.analysis.report import render_figure5_summary
from repro.analysis.tables import PAPER_SPEEDUPS, run_table1, speedups
from repro.core.config import PAPER_CONFIGS, PAPER_TABLE1_CYCLES, PAPER_TABLE1_REQUESTS
from repro.workloads.random_access import RandomAccessConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1 << 14)
    parser.add_argument("--out", type=str, default=None,
                        help="write the markdown report to this file")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    lines = ["# HMC-Sim paper reproduction report", ""]
    lines.append(f"Requests per configuration: {args.requests:,} "
                 f"(paper: {PAPER_TABLE1_REQUESTS:,}); 50/50 R/W, 64 B, "
                 f"round-robin links.")
    lines.append("")

    # ---- Table I --------------------------------------------------------
    print(f"running Table I ({args.requests:,} requests x 4 configs)...")
    t0 = time.time()
    rows = run_table1(num_requests=args.requests, seed=args.seed)
    lines.append("## Table I — simulated runtime in clock cycles")
    lines.append("")
    lines.append("| configuration | paper cycles | paper req/cyc | "
                 "measured cycles | measured req/cyc |")
    lines.append("|---|---|---|---|---|")
    for r in rows:
        paper_rpc = PAPER_TABLE1_REQUESTS / r.paper_cycles
        lines.append(
            f"| {r.label} | {r.paper_cycles:,} | {paper_rpc:.2f} "
            f"| {r.cycles:,} | {r.result.requests_per_cycle:.2f} |"
        )
    sp = speedups(rows)
    lines.append("")
    lines.append(f"- bank speedup: measured **{sp['bank_speedup']:.3f}x** "
                 f"(paper {PAPER_SPEEDUPS['bank_speedup']}x)")
    lines.append(f"- link speedup: measured **{sp['link_speedup']:.3f}x** "
                 f"(paper {PAPER_SPEEDUPS['link_speedup']}x)")
    cycles = {r.label: r.cycles for r in rows}
    ordering_ok = (
        cycles["4-Link; 8-Bank; 2GB"] == max(cycles.values())
        and cycles["8-Link; 16-Bank; 8GB"] == min(cycles.values())
    )
    lines.append(f"- row ordering matches the paper: **{ordering_ok}**")
    lines.append("")
    print(f"  done in {time.time() - t0:.0f}s")

    # ---- Figure 5 -------------------------------------------------------
    fig_requests = max(1024, args.requests // 4)
    lines.append("## Figure 5 — per-cycle trace series")
    lines.append("")
    for label, device in PAPER_CONFIGS.items():
        print(f"running Figure 5 for {label}...")
        data = run_figure5(device,
                           RandomAccessConfig(num_requests=fig_requests,
                                              seed=args.seed))
        lines.append(f"### {label}")
        lines.append("```")
        lines.append(render_figure5_summary(data))
        lines.append("```")
        lines.append("")

    report = "\n".join(lines)
    print()
    print(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report + "\n")
        print(f"\nwrote {args.out}")
    return 0 if ordering_ok else 1


if __name__ == "__main__":
    sys.exit(main())
