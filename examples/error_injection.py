#!/usr/bin/env python
"""Error simulation: traffic over a noisy link with CRC + retry.

HMC-Sim's goals include "error simulation" (paper §IV.5).  This example
attaches a bit-error fault model to a host link, drives the random
workload through it, and shows (a) no corrupted packet is ever accepted,
(b) everything recovers through the IRTRY/replay protocol, and (c) what
the noise costs.

Usage::

    python examples/error_injection.py [--ber 1e-4] [--requests N]
"""

import argparse
import sys

from repro.core.simulator import HMCSim
from repro.faults.link_model import LinkFaultModel
from repro.host.host import Host
from repro.packets.commands import CMD
from repro.topology.builder import build_simple
from repro.workloads.random_access import RandomAccessConfig, random_access_requests


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ber", type=float, default=1e-4,
                        help="bit error rate on the host link")
    parser.add_argument("--drop", type=float, default=0.0,
                        help="whole-packet drop rate")
    parser.add_argument("--requests", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    sim = build_simple(
        HMCSim(num_devs=1, num_links=4, num_banks=8, capacity=2),
        host_links=1,
    )
    session = sim.attach_fault_model(
        0, 0,
        LinkFaultModel(ber=args.ber, drop_rate=args.drop, seed=args.seed),
        max_retries=64,
    )
    host = Host(sim)

    # Phase 1: signature writes through the noisy link.
    n = args.requests // 2
    writes = [(CMD.WR64, i * 64, [i ^ 0xA5A5] * 8) for i in range(n)]
    host.run(writes)

    # Phase 2: read back and verify every word.
    corrupt = 0
    reads = [(CMD.RD64, i * 64, None) for i in range(n)]
    host.run(reads)
    for i in (0, n // 4, n // 2, n - 1):
        dev = sim.devices[0]
        d = dev.amap.decode(i * 64)
        rel = d.dram * dev.amap.block_size + d.offset
        if dev.vaults[d.vault].banks[d.bank].read(rel, 64) != [i ^ 0xA5A5] * 8:
            corrupt += 1

    s = session.stats
    print(f"link BER {args.ber:g}, drop rate {args.drop:g}:")
    print(f"  logical packets          : {s.packets:,}")
    print(f"  physical transmissions   : {s.transmissions:,}")
    print(f"  CRC failures detected    : {s.crc_failures:,}")
    print(f"  whole packets dropped    : {s.drops:,}")
    print(f"  IRTRY retry exchanges    : {s.irtry_events:,}")
    print(f"  packets recovered        : {s.recovered:,}")
    print(f"  packets abandoned        : {s.failed}")
    print(f"  modelled recovery cost   : {s.recovery_cycles:,} cycles")
    print(f"  spot-checked blocks corrupt: {corrupt}  (must be 0)")
    print(f"  host-visible errors      : {host.errors}  (must be 0)")
    if corrupt or host.errors or s.failed:
        print("FAILED: noise leaked through the CRC/retry protocol")
        return 1
    print("\nAll traffic delivered bit-exact despite the noise — every "
          "corruption was caught by the tail CRC and replayed.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
