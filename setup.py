"""Setuptools shim for environments without PEP 517 wheel support.

All project metadata lives in pyproject.toml; this file only enables
``pip install -e .`` through the legacy setuptools code path.
"""

from setuptools import setup

setup()
